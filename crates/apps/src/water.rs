//! SPLASH Water — molecular dynamics with an O(n²) pairwise force
//! computation and a cutoff radius (§5, §6.4).
//!
//! The molecule array is allocated contiguously and partitioned among
//! the processors. Each molecule record is 85 doubles (680 bytes), so
//! about six records share a page — the paper's layout. Force
//! contributions to other processors' molecules are accumulated locally
//! and added under per-owner locks; position updates write each owner's
//! own records. Partition boundaries fall inside pages, so a small
//! fraction of pages (the paper measures 3.5%) is write-write falsely
//! shared.

use adsm_core::{ProtocolKind, SharedVec};

use crate::support::{band, compare_f64, unit_f64, work};
use crate::{AppRun, RunOptions, Scale};

/// Doubles per molecule record (positions, velocities, forces, per-
/// contributor force slots, and the predictor/corrector state of the
/// full SPLASH record).
pub const MOL_WORDS: usize = 85;

const POS: usize = 0;
const VEL: usize = 3;
const FRC: usize = 6;
/// Per-contributor partial-force slots (3 doubles each, up to
/// [`MAX_PROCS`] contributors). The owner reduces them in processor
/// order, which makes the floating-point sum independent of lock-grant
/// timing — bit-identical to the sequential reference.
const SLOT: usize = 9;
/// Maximum cluster size Water supports (slot space in the record).
pub const MAX_PROCS: usize = 16;

/// Water input parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaterParams {
    /// Number of molecules.
    pub nmol: usize,
    /// Timesteps.
    pub steps: usize,
    /// Instance seed.
    pub seed: u64,
    /// Modelled compute per interacting pair, in nanoseconds.
    pub ns_per_pair: u64,
}

impl WaterParams {
    /// Parameters for a scale preset.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => WaterParams {
                nmol: 48,
                steps: 2,
                seed: 0xAA_7E4,
                ns_per_pair: 300,
            },
            Scale::Small => WaterParams {
                nmol: 192,
                steps: 4,
                seed: 0xAA_7E4,
                ns_per_pair: 60_000,
            },
            // Paper: 512 molecules.
            Scale::Paper => WaterParams {
                nmol: 512,
                steps: 5,
                seed: 0xAA_7E4,
                ns_per_pair: 60_000,
            },
            // Two molecules per processor at 256-way.
            Scale::Large => WaterParams {
                nmol: 512,
                steps: 2,
                seed: 0xAA_7E4,
                ns_per_pair: 300,
            },
        }
    }
}

const CUTOFF: f64 = 0.35;
const DT: f64 = 0.002;
const STIFF: f64 = 25.0;
/// Softening keeps near-contact forces bounded, so floating-point
/// reduction-order differences stay within the verification tolerance.
const SOFT: f64 = 0.05;

/// Deterministic initial positions in the unit box; zero velocities.
fn initial_positions(params: &WaterParams) -> Vec<[f64; 3]> {
    (0..params.nmol)
        .map(|i| {
            [
                unit_f64(params.seed ^ (i as u64 * 3 + 1)),
                unit_f64(params.seed ^ (i as u64 * 3 + 2)),
                unit_f64(params.seed ^ (i as u64 * 3 + 3)),
            ]
        })
        .collect()
}

/// Soft repulsive pair force on molecule `a` from molecule `b`:
/// `STIFF * (CUTOFF - r)^2` along the separation, zero beyond the
/// cutoff. Deterministic and numerically tame.
fn pair_force(pa: &[f64; 3], pb: &[f64; 3]) -> Option<[f64; 3]> {
    let d = [pa[0] - pb[0], pa[1] - pb[1], pa[2] - pb[2]];
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    if r2 >= CUTOFF * CUTOFF || r2 == 0.0 {
        return None;
    }
    let r = r2.sqrt();
    let mag = STIFF * (CUTOFF - r) * (CUTOFF - r) / (r + SOFT);
    Some([d[0] * mag / r, d[1] * mag / r, d[2] * mag / r])
}

/// Sequential reference; returns the flattened final positions.
pub fn reference(params: &WaterParams) -> Vec<f64> {
    let n = params.nmol;
    let mut pos = initial_positions(params);
    let mut vel = vec![[0.0f64; 3]; n];
    for _ in 0..params.steps {
        let mut force = vec![[0.0f64; 3]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if let Some(f) = pair_force(&pos[i], &pos[j]) {
                    for k in 0..3 {
                        force[i][k] += f[k];
                        force[j][k] -= f[k];
                    }
                }
            }
        }
        for i in 0..n {
            for k in 0..3 {
                vel[i][k] += force[i][k] * DT;
                pos[i][k] += vel[i][k] * DT;
            }
        }
    }
    pos.into_iter().flatten().collect()
}

/// Runs Water under `protocol` and verifies final positions.
pub fn run(protocol: ProtocolKind, nprocs: usize, scale: Scale) -> AppRun {
    run_with(protocol, nprocs, WaterParams::new(scale))
}

/// As [`run`], honouring [`RunOptions`] protocol extensions.
pub fn run_tuned(protocol: ProtocolKind, nprocs: usize, scale: Scale, opts: &RunOptions) -> AppRun {
    run_params(protocol, nprocs, WaterParams::new(scale), opts)
}

/// Runs Water with explicit parameters (parameter sweeps, debugging).
///
/// # Panics
///
/// Panics if `nprocs` exceeds [`MAX_PROCS`] (the contributor-slot space
/// in the molecule record).
pub fn run_with(protocol: ProtocolKind, nprocs: usize, params: WaterParams) -> AppRun {
    run_params(protocol, nprocs, params, &RunOptions::default())
}

fn run_params(
    protocol: ProtocolKind,
    nprocs: usize,
    params: WaterParams,
    opts: &RunOptions,
) -> AppRun {
    assert!(
        nprocs <= MAX_PROCS,
        "Water supports at most {MAX_PROCS} processors"
    );
    let n = params.nmol;
    let mut dsm = opts.builder(protocol, nprocs).build();
    let mol: SharedVec<f64> = dsm.alloc_page_aligned::<f64>(n * MOL_WORDS);

    let outcome = dsm
        .run(move |p| {
            let np = p.nprocs();
            let owner_of = move |i: usize| {
                (0..np)
                    .find(|&k| {
                        let (s, e) = band(n, np, k);
                        i >= s && i < e
                    })
                    .expect("molecule owned")
            };
            let (m0, m1) = band(n, np, p.index());

            if p.index() == 0 {
                let pos = initial_positions(&params);
                for (i, q) in pos.iter().enumerate() {
                    mol.write_from(p, i * MOL_WORDS + POS, q);
                }
            }
            p.barrier();

            let mut positions = vec![[0.0f64; 3]; n];
            for _ in 0..params.steps {
                // Read all positions (everyone reads the whole array —
                // the O(n^2) interaction needs them all).
                for (i, q) in positions.iter_mut().enumerate() {
                    // One span view per molecule position: three doubles
                    // decoded in place, no per-gather vector.
                    let s = i * MOL_WORDS + POS;
                    mol.view(p, s..s + 3).copy_to_slice(q);
                }

                // Pair forces for pairs whose lower index is ours;
                // contributions accumulate in a private scratch.
                let mut scratch = vec![[0.0f64; 3]; n];
                let mut pairs = 0usize;
                for i in m0..m1 {
                    for j in (i + 1)..n {
                        pairs += 1;
                        if let Some(f) = pair_force(&positions[i], &positions[j]) {
                            for k in 0..3 {
                                scratch[i][k] += f[k];
                                scratch[j][k] -= f[k];
                            }
                        }
                    }
                }
                p.compute(work(pairs, params.ns_per_pair));

                // Deposit the partial sums into this contributor's slots
                // of the affected molecule records, one owner's region at
                // a time under that owner's lock (the paper's
                // lock-protected force updates).
                let my_slot = SLOT + 3 * p.index();
                for owner in 0..np {
                    let (s, e) = band(n, np, owner);
                    let touched: Vec<usize> = (s..e).filter(|&i| scratch[i] != [0.0; 3]).collect();
                    if touched.is_empty() {
                        continue;
                    }
                    p.critical(100 + owner as u64, |p| {
                        for &i in &touched {
                            mol.write_from(p, i * MOL_WORDS + my_slot, &scratch[i]);
                        }
                    });
                }
                let _ = owner_of;
                p.barrier();

                // Update own molecules: reduce the contributor slots in
                // processor order (deterministic float sum), integrate,
                // and clear the slots for the next step.
                for i in m0..m1 {
                    let base = i * MOL_WORDS;
                    let mut rec = mol.read_range(p, base, base + SLOT + 3 * np);
                    for k in 0..3 {
                        let mut f = 0.0f64;
                        for c in 0..np {
                            f += rec[SLOT + 3 * c + k];
                        }
                        rec[FRC + k] = f;
                        rec[VEL + k] += f * DT;
                        rec[POS + k] += rec[VEL + k] * DT;
                    }
                    for c in 0..np {
                        for k in 0..3 {
                            rec[SLOT + 3 * c + k] = 0.0;
                        }
                    }
                    mol.write_from(p, base, &rec);
                }
                p.compute(work((m1 - m0) * np, 40));
                p.barrier();
            }
        })
        .expect("Water run failed");

    // Gather final positions from the records.
    let all = outcome.read_vec(&mol);
    let got: Vec<f64> = (0..n)
        .flat_map(|i| {
            let b = i * MOL_WORDS + POS;
            all[b..b + 3].to_vec()
        })
        .collect();
    let want = reference(&params);
    // Force contributions accumulate under per-owner locks, in an order
    // that differs from the sequential sweep; the floating-point
    // differences compound slightly over the timestep feedback.
    let check = compare_f64(&got, &want, 1e-6);
    AppRun {
        outcome,
        ok: check.is_ok(),
        detail: check.err().unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_force_is_antisymmetric_and_cut() {
        let a = [0.1, 0.1, 0.1];
        let b = [0.2, 0.1, 0.1];
        let fab = pair_force(&a, &b).expect("within cutoff");
        let fba = pair_force(&b, &a).expect("within cutoff");
        for k in 0..3 {
            assert!((fab[k] + fba[k]).abs() < 1e-15);
        }
        let far = [0.9, 0.9, 0.9];
        assert!(pair_force(&a, &far).is_none());
    }

    #[test]
    fn reference_moves_molecules() {
        let params = WaterParams::new(Scale::Tiny);
        let pos0: Vec<f64> = initial_positions(&params).into_iter().flatten().collect();
        let pos1 = reference(&params);
        assert_ne!(pos0, pos1);
        assert!(pos1.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn parallel_matches_reference_all_protocols() {
        for protocol in [
            ProtocolKind::Mw,
            ProtocolKind::Sw,
            ProtocolKind::Wfs,
            ProtocolKind::WfsWg,
        ] {
            let run = run(protocol, 4, Scale::Tiny);
            assert!(run.ok, "{protocol}: {}", run.detail);
        }
    }

    #[test]
    fn water_has_modest_false_sharing() {
        // Boundary pages between molecule bands are falsely shared; the
        // bulk of pages has a single writer.
        let run = run(ProtocolKind::Mw, 4, Scale::Small);
        let prof = &run.outcome.report.profile;
        assert!(prof.ww_false_shared_pages > 0);
        assert!(
            prof.pct_ww_false_shared < 50.0,
            "got {}%",
            prof.pct_ww_false_shared
        );
    }
}
