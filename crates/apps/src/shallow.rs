//! NCAR Shallow — finite-difference shallow-water equations on a 2D
//! periodic grid (§5, §6.4), after Sadourny (1975).
//!
//! Thirteen staggered field arrays of `m x (n+1)` doubles are banded by
//! rows over the processors; each timestep computes mass fluxes,
//! potential vorticity and height (`cu`, `cv`, `z`, `h`) from the state
//! (`u`, `v`, `p`), then the new state, then applies Robert-Asselin time
//! smoothing — three barrier-separated phases. Sharing happens across
//! band edges; because rows are **not** page multiples (the `+1`
//! staggering column), band boundaries fall inside pages and a
//! noticeable fraction of pages is write-write falsely shared — the
//! paper measures 13.9% and shows Shallow as the clearest case for
//! per-page adaptation.

use adsm_core::{ProtocolKind, SharedMatrix};

use crate::support::{band, compare_f64, work};
use crate::{AppRun, RunOptions, Scale};

/// Shallow input parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShallowParams {
    /// Grid rows (latitude points).
    pub m: usize,
    /// Grid columns (longitude points); rows hold `n + 1` doubles.
    pub n: usize,
    /// Timesteps.
    pub steps: usize,
    /// Modelled compute per grid element per phase, in nanoseconds.
    pub ns_per_elem: u64,
}

impl ShallowParams {
    /// Parameters for a scale preset.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => ShallowParams {
                m: 24,
                n: 64,
                steps: 3,
                ns_per_elem: 600,
            },
            Scale::Small => ShallowParams {
                m: 96,
                n: 64,
                steps: 10,
                ns_per_elem: 10_000,
            },
            // Paper: 1024 x 256 (staggered rows of 257 doubles). Scaled
            // to 256 x 128 with the same staggering, so rows stay
            // non-page-aligned and band boundaries fall inside pages.
            Scale::Paper => ShallowParams {
                m: 256,
                n: 128,
                steps: 20,
                ns_per_elem: 10_000,
            },
            // One row band per processor at 256-way, staggered rows
            // kept from the paper layout.
            Scale::Large => ShallowParams {
                m: 256,
                n: 64,
                steps: 3,
                ns_per_elem: 600,
            },
        }
    }

    fn row(&self) -> usize {
        self.n + 1
    }

    fn cells(&self) -> usize {
        self.m * self.row()
    }
}

const DT: f64 = 90.0;
const DX: f64 = 1.0e5;
const DY: f64 = 1.0e5;
const ALPHA: f64 = 0.001;

/// The full field state, as plain vectors (sequential reference) —
/// `u, v, p` plus their old copies and the derived fields.
struct SeqState {
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<f64>,
    uold: Vec<f64>,
    vold: Vec<f64>,
    pold: Vec<f64>,
    cu: Vec<f64>,
    cv: Vec<f64>,
    z: Vec<f64>,
    h: Vec<f64>,
}

fn initial_field(params: &ShallowParams) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let (m, row) = (params.m, params.row());
    let mut u = vec![0.0; params.cells()];
    let mut v = vec![0.0; params.cells()];
    let mut p = vec![0.0; params.cells()];
    for i in 0..m {
        for j in 0..params.n {
            let x = j as f64 / params.n as f64;
            let y = i as f64 / m as f64;
            let psi = 50.0
                * (2.0 * std::f64::consts::PI * x).sin()
                * (2.0 * std::f64::consts::PI * y).cos();
            u[i * row + j] = -psi * (2.0 * std::f64::consts::PI * y).sin();
            v[i * row + j] = psi * (2.0 * std::f64::consts::PI * x).cos();
            p[i * row + j] = 5000.0 + 100.0 * (2.0 * std::f64::consts::PI * (x + y)).cos();
        }
    }
    (u, v, p)
}

/// Phase 1 formulas for one cell (periodic indexing).
#[allow(clippy::too_many_arguments)]
fn phase1_cell(
    u: &[f64],
    v: &[f64],
    p: &[f64],
    i: usize,
    j: usize,
    m: usize,
    n: usize,
    row: usize,
) -> (f64, f64, f64, f64) {
    let im = (i + m - 1) % m;
    let jm = (j + n - 1) % n;
    let idx = |a: usize, b: usize| a * row + b;
    let cu = 0.5 * (p[idx(i, j)] + p[idx(i, jm)]) * u[idx(i, j)];
    let cv = 0.5 * (p[idx(i, j)] + p[idx(im, j)]) * v[idx(i, j)];
    let z = (4.0 / DX * (v[idx(i, j)] - v[idx(i, jm)]) - 4.0 / DY * (u[idx(i, j)] - u[idx(im, j)]))
        / (p[idx(im, jm)] + p[idx(im, j)] + p[idx(i, j)] + p[idx(i, jm)]);
    let h = p[idx(i, j)] + 0.25 * (u[idx(i, j)] * u[idx(i, j)] + v[idx(i, j)] * v[idx(i, j)]);
    (cu, cv, z, h)
}

/// Phase 2 formulas for one cell (periodic indexing).
#[allow(clippy::too_many_arguments)]
fn phase2_cell(
    state: &SeqState,
    i: usize,
    j: usize,
    m: usize,
    n: usize,
    row: usize,
    tdt: f64,
) -> (f64, f64, f64) {
    let ip = (i + 1) % m;
    let jp = (j + 1) % n;
    let idx = |a: usize, b: usize| a * row + b;
    let unew = state.uold[idx(i, j)]
        + tdt
            * 0.125
            * (state.z[idx(ip, j)] + state.z[idx(i, j)])
            * (state.cv[idx(ip, j)] + state.cv[idx(i, j)])
        - tdt / DX * (state.h[idx(i, jp)] - state.h[idx(i, j)]);
    let vnew = state.vold[idx(i, j)]
        - tdt
            * 0.125
            * (state.z[idx(i, jp)] + state.z[idx(i, j)])
            * (state.cu[idx(i, jp)] + state.cu[idx(i, j)])
        - tdt / DY * (state.h[idx(ip, j)] - state.h[idx(i, j)]);
    let pnew = state.pold[idx(i, j)]
        - tdt / DX * (state.cu[idx(i, jp)] - state.cu[idx(i, j)])
        - tdt / DY * (state.cv[idx(ip, j)] - state.cv[idx(i, j)]);
    (unew, vnew, pnew)
}

/// Sequential reference; returns the final `p` field.
pub fn reference(params: &ShallowParams) -> Vec<f64> {
    let (m, n, row) = (params.m, params.n, params.row());
    let (u, v, p) = initial_field(params);
    let mut s = SeqState {
        uold: u.clone(),
        vold: v.clone(),
        pold: p.clone(),
        u,
        v,
        p,
        cu: vec![0.0; params.cells()],
        cv: vec![0.0; params.cells()],
        z: vec![0.0; params.cells()],
        h: vec![0.0; params.cells()],
    };
    let mut tdt = DT;
    for step in 0..params.steps {
        for i in 0..m {
            for j in 0..n {
                let (cu, cv, z, h) = phase1_cell(&s.u, &s.v, &s.p, i, j, m, n, row);
                s.cu[i * row + j] = cu;
                s.cv[i * row + j] = cv;
                s.z[i * row + j] = z;
                s.h[i * row + j] = h;
            }
        }
        let mut unew = vec![0.0; params.cells()];
        let mut vnew = vec![0.0; params.cells()];
        let mut pnew = vec![0.0; params.cells()];
        for i in 0..m {
            for j in 0..n {
                let (nu, nv, np_) = phase2_cell(&s, i, j, m, n, row, tdt);
                unew[i * row + j] = nu;
                vnew[i * row + j] = nv;
                pnew[i * row + j] = np_;
            }
        }
        for i in 0..m {
            for j in 0..n {
                let k = i * row + j;
                s.uold[k] = s.u[k] + ALPHA * (unew[k] - 2.0 * s.u[k] + s.uold[k]);
                s.vold[k] = s.v[k] + ALPHA * (vnew[k] - 2.0 * s.v[k] + s.vold[k]);
                s.pold[k] = s.p[k] + ALPHA * (pnew[k] - 2.0 * s.p[k] + s.pold[k]);
                s.u[k] = unew[k];
                s.v[k] = vnew[k];
                s.p[k] = pnew[k];
            }
        }
        if step == 0 {
            tdt += tdt;
        }
    }
    s.p
}

/// Handles to the shared field arrays: `m x (n+1)` row-major matrices,
/// accessed row-wise through span-guard views.
#[derive(Clone, Copy)]
struct Fields {
    u: SharedMatrix<f64>,
    v: SharedMatrix<f64>,
    p: SharedMatrix<f64>,
    uold: SharedMatrix<f64>,
    vold: SharedMatrix<f64>,
    pold: SharedMatrix<f64>,
    cu: SharedMatrix<f64>,
    cv: SharedMatrix<f64>,
    z: SharedMatrix<f64>,
    h: SharedMatrix<f64>,
    unew: SharedMatrix<f64>,
    vnew: SharedMatrix<f64>,
    pnew: SharedMatrix<f64>,
}

/// Runs Shallow under `protocol` and verifies the final pressure field.
pub fn run(protocol: ProtocolKind, nprocs: usize, scale: Scale) -> AppRun {
    run_tuned(protocol, nprocs, scale, &RunOptions::default())
}

/// As [`run`], honouring [`RunOptions`] protocol extensions.
pub fn run_tuned(protocol: ProtocolKind, nprocs: usize, scale: Scale, opts: &RunOptions) -> AppRun {
    run_params(protocol, nprocs, ShallowParams::new(scale), opts)
}

/// Runs Shallow with explicit parameters (input-sensitivity sweeps: the
/// grid shape decides how many band boundaries fall inside shared pages,
/// i.e. the fraction of write-write falsely shared pages).
pub fn run_with(protocol: ProtocolKind, nprocs: usize, params: ShallowParams) -> AppRun {
    run_params(protocol, nprocs, params, &RunOptions::default())
}

fn run_params(
    protocol: ProtocolKind,
    nprocs: usize,
    params: ShallowParams,
    opts: &RunOptions,
) -> AppRun {
    let (m, n, row) = (params.m, params.n, params.row());
    let mut dsm = opts.builder(protocol, nprocs).build();
    let fields = Fields {
        u: dsm.alloc_matrix_page_aligned::<f64>(m, row),
        v: dsm.alloc_matrix_page_aligned::<f64>(m, row),
        p: dsm.alloc_matrix_page_aligned::<f64>(m, row),
        uold: dsm.alloc_matrix_page_aligned::<f64>(m, row),
        vold: dsm.alloc_matrix_page_aligned::<f64>(m, row),
        pold: dsm.alloc_matrix_page_aligned::<f64>(m, row),
        cu: dsm.alloc_matrix_page_aligned::<f64>(m, row),
        cv: dsm.alloc_matrix_page_aligned::<f64>(m, row),
        z: dsm.alloc_matrix_page_aligned::<f64>(m, row),
        h: dsm.alloc_matrix_page_aligned::<f64>(m, row),
        unew: dsm.alloc_matrix_page_aligned::<f64>(m, row),
        vnew: dsm.alloc_matrix_page_aligned::<f64>(m, row),
        pnew: dsm.alloc_matrix_page_aligned::<f64>(m, row),
    };

    let outcome = dsm
        .run(move |pr| {
            let (i0, i1) = band(m, pr.nprocs(), pr.index());
            if pr.index() == 0 {
                let (u, v, p) = initial_field(&params);
                // Whole-field initialisation: one writable span view per
                // field covers every row in a single guard.
                fields.u.shared_vec().view_mut(pr, ..).copy_from_slice(&u);
                fields.v.shared_vec().view_mut(pr, ..).copy_from_slice(&v);
                fields.p.shared_vec().view_mut(pr, ..).copy_from_slice(&p);
                fields
                    .uold
                    .shared_vec()
                    .view_mut(pr, ..)
                    .copy_from_slice(&u);
                fields
                    .vold
                    .shared_vec()
                    .view_mut(pr, ..)
                    .copy_from_slice(&v);
                fields
                    .pold
                    .shared_vec()
                    .view_mut(pr, ..)
                    .copy_from_slice(&p);
            }
            pr.barrier();

            let mut tdt = DT;
            // Row-sized scratch buffers.
            let mut ur = vec![vec![0.0f64; row]; 3];
            let mut vr = vec![vec![0.0f64; row]; 3];
            let mut prow = vec![vec![0.0f64; row]; 3];
            let mut out_cu = vec![0.0f64; row];
            let mut out_cv = vec![0.0f64; row];
            let mut out_z = vec![0.0f64; row];
            let mut out_h = vec![0.0f64; row];

            for step in 0..params.steps {
                // --- Phase 1: cu, cv, z, h over own band.
                for i in i0..i1 {
                    let im = (i + m - 1) % m;
                    fields.u.read_row_into(pr, im, &mut ur[0]);
                    fields.u.read_row_into(pr, i, &mut ur[1]);
                    fields.v.read_row_into(pr, im, &mut vr[0]);
                    fields.v.read_row_into(pr, i, &mut vr[1]);
                    fields.p.read_row_into(pr, im, &mut prow[0]);
                    fields.p.read_row_into(pr, i, &mut prow[1]);
                    for j in 0..n {
                        let jm = (j + n - 1) % n;
                        let cu = 0.5 * (prow[1][j] + prow[1][jm]) * ur[1][j];
                        let cv = 0.5 * (prow[1][j] + prow[0][j]) * vr[1][j];
                        let z = (4.0 / DX * (vr[1][j] - vr[1][jm])
                            - 4.0 / DY * (ur[1][j] - ur[0][j]))
                            / (prow[0][jm] + prow[0][j] + prow[1][j] + prow[1][jm]);
                        let h = prow[1][j] + 0.25 * (ur[1][j] * ur[1][j] + vr[1][j] * vr[1][j]);
                        out_cu[j] = cu;
                        out_cv[j] = cv;
                        out_z[j] = z;
                        out_h[j] = h;
                    }
                    out_cu[n] = 0.0;
                    out_cv[n] = 0.0;
                    out_z[n] = 0.0;
                    out_h[n] = 0.0;
                    fields.cu.write_row_from(pr, i, &out_cu);
                    fields.cv.write_row_from(pr, i, &out_cv);
                    fields.z.write_row_from(pr, i, &out_z);
                    fields.h.write_row_from(pr, i, &out_h);
                    pr.compute(work(n, params.ns_per_elem));
                }
                pr.barrier();

                // --- Phase 2: unew, vnew, pnew over own band.
                let mut cur = vec![vec![0.0f64; row]; 2];
                let mut cvr = vec![vec![0.0f64; row]; 2];
                let mut zr = vec![vec![0.0f64; row]; 2];
                let mut hr = vec![vec![0.0f64; row]; 2];
                let mut uor = vec![0.0f64; row];
                let mut vor = vec![0.0f64; row];
                let mut por = vec![0.0f64; row];
                for i in i0..i1 {
                    let ip = (i + 1) % m;
                    fields.cu.read_row_into(pr, i, &mut cur[0]);
                    fields.cu.read_row_into(pr, ip, &mut cur[1]);
                    fields.cv.read_row_into(pr, i, &mut cvr[0]);
                    fields.cv.read_row_into(pr, ip, &mut cvr[1]);
                    fields.z.read_row_into(pr, i, &mut zr[0]);
                    fields.z.read_row_into(pr, ip, &mut zr[1]);
                    fields.h.read_row_into(pr, i, &mut hr[0]);
                    fields.h.read_row_into(pr, ip, &mut hr[1]);
                    fields.uold.read_row_into(pr, i, &mut uor);
                    fields.vold.read_row_into(pr, i, &mut vor);
                    fields.pold.read_row_into(pr, i, &mut por);
                    for j in 0..n {
                        let jp = (j + 1) % n;
                        let unew = uor[j]
                            + tdt * 0.125 * (zr[1][j] + zr[0][j]) * (cvr[1][j] + cvr[0][j])
                            - tdt / DX * (hr[0][jp] - hr[0][j]);
                        let vnew = vor[j]
                            - tdt * 0.125 * (zr[0][jp] + zr[0][j]) * (cur[0][jp] + cur[0][j])
                            - tdt / DY * (hr[1][j] - hr[0][j]);
                        let pnew = por[j]
                            - tdt / DX * (cur[0][jp] - cur[0][j])
                            - tdt / DY * (cvr[1][j] - cvr[0][j]);
                        out_cu[j] = unew;
                        out_cv[j] = vnew;
                        out_z[j] = pnew;
                    }
                    out_cu[n] = 0.0;
                    out_cv[n] = 0.0;
                    out_z[n] = 0.0;
                    fields.unew.write_row_from(pr, i, &out_cu);
                    fields.vnew.write_row_from(pr, i, &out_cv);
                    fields.pnew.write_row_from(pr, i, &out_z);
                    pr.compute(work(n, params.ns_per_elem));
                }
                pr.barrier();

                // --- Phase 3: time smoothing and state rotation.
                let mut un = vec![0.0f64; row];
                let mut vn = vec![0.0f64; row];
                let mut pn = vec![0.0f64; row];
                let mut uc = vec![0.0f64; row];
                let mut vc = vec![0.0f64; row];
                let mut pc = vec![0.0f64; row];
                for i in i0..i1 {
                    fields.unew.read_row_into(pr, i, &mut un);
                    fields.vnew.read_row_into(pr, i, &mut vn);
                    fields.pnew.read_row_into(pr, i, &mut pn);
                    fields.u.read_row_into(pr, i, &mut uc);
                    fields.v.read_row_into(pr, i, &mut vc);
                    fields.p.read_row_into(pr, i, &mut pc);
                    fields.uold.read_row_into(pr, i, &mut uor);
                    fields.vold.read_row_into(pr, i, &mut vor);
                    fields.pold.read_row_into(pr, i, &mut por);
                    for j in 0..n {
                        uor[j] = uc[j] + ALPHA * (un[j] - 2.0 * uc[j] + uor[j]);
                        vor[j] = vc[j] + ALPHA * (vn[j] - 2.0 * vc[j] + vor[j]);
                        por[j] = pc[j] + ALPHA * (pn[j] - 2.0 * pc[j] + por[j]);
                    }
                    fields.uold.write_row_from(pr, i, &uor);
                    fields.vold.write_row_from(pr, i, &vor);
                    fields.pold.write_row_from(pr, i, &por);
                    fields.u.write_row_from(pr, i, &un);
                    fields.v.write_row_from(pr, i, &vn);
                    fields.p.write_row_from(pr, i, &pn);
                    pr.compute(work(n, params.ns_per_elem / 2));
                }
                if step == 0 {
                    tdt += tdt;
                }
                pr.barrier();
            }
        })
        .expect("Shallow run failed");

    let got = outcome.read_vec(&fields.p.shared_vec());
    let want = reference(&params);
    let check = compare_f64(&got, &want, 1e-9);
    AppRun {
        outcome,
        ok: check.is_ok(),
        detail: check.err().unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stays_finite() {
        let p = reference(&ShallowParams::new(Scale::Tiny));
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p.iter().any(|v| *v != 0.0));
    }

    #[test]
    fn parallel_matches_reference_all_protocols() {
        for protocol in [
            ProtocolKind::Mw,
            ProtocolKind::Sw,
            ProtocolKind::Wfs,
            ProtocolKind::WfsWg,
        ] {
            let run = run(protocol, 4, Scale::Tiny);
            assert!(run.ok, "{protocol}: {}", run.detail);
        }
    }

    #[test]
    fn shallow_exhibits_partial_false_sharing() {
        // Band boundaries fall inside pages (rows are not page
        // multiples), so some — but not all — pages are falsely shared.
        let run = run(ProtocolKind::Mw, 4, Scale::Small);
        let prof = &run.outcome.report.profile;
        assert!(prof.ww_false_shared_pages > 0, "expected boundary sharing");
        assert!(
            (prof.pct_ww_false_shared) < 60.0,
            "most pages have a single writer, got {}%",
            prof.pct_ww_false_shared
        );
    }
}
