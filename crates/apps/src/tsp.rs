//! TSP — branch-and-bound travelling salesman (§5, §6.4).
//!
//! A shared work queue of partial tours and a shared best-tour bound,
//! both lock-protected (TSP is the one lock-only application in the
//! suite). Processors pop partial tours, expand them breadth-first until
//! a split depth, then solve the subtree locally, updating the global
//! bound. Updates to the queue and bound modify a couple of words — the
//! paper's *small* write granularity, with little write-write false
//! sharing (the queue pages are lock-ordered).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use adsm_core::{ExecBackend, ProtocolKind, SharedVec};

use crate::support::{unit_f64, work};
use crate::{AppRun, RunOptions, Scale};

/// TSP input parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TspParams {
    /// Number of cities.
    pub ncities: usize,
    /// Depth up to which partial tours go through the shared queue.
    pub split_depth: usize,
    /// Instance seed.
    pub seed: u64,
    /// Modelled compute per expanded node, in nanoseconds.
    pub ns_per_node: u64,
}

impl TspParams {
    /// Parameters for a scale preset.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => TspParams {
                ncities: 9,
                split_depth: 3,
                seed: 0x75_90,
                ns_per_node: 900,
            },
            Scale::Small => TspParams {
                ncities: 11,
                split_depth: 3,
                seed: 0x75_90,
                ns_per_node: 150_000,
            },
            // Paper: 19 cities. Verification uses Held-Karp, whose
            // memory grows as n * 2^n, so the paper preset uses 13
            // cities (same queue/bound sharing pattern).
            Scale::Paper => TspParams {
                ncities: 13,
                split_depth: 3,
                seed: 0x75_90,
                ns_per_node: 150_000,
            },
            // Deeper split: more shared-queue items so 64+ workers all
            // find work.
            Scale::Large => TspParams {
                ncities: 11,
                split_depth: 4,
                seed: 0x75_90,
                ns_per_node: 900,
            },
        }
    }
}

/// Deterministic instance: cities on the unit square, scaled integer
/// Euclidean distances.
pub fn distance_matrix(params: &TspParams) -> Vec<u64> {
    let n = params.ncities;
    let xs: Vec<f64> = (0..n)
        .map(|i| unit_f64(params.seed ^ (i as u64 * 2 + 1)))
        .collect();
    let ys: Vec<f64> = (0..n)
        .map(|i| unit_f64(params.seed ^ (i as u64 * 2 + 2)))
        .collect();
    let mut d = vec![0u64; n * n];
    for i in 0..n {
        for j in 0..n {
            let dx = xs[i] - xs[j];
            let dy = ys[i] - ys[j];
            d[i * n + j] = ((dx * dx + dy * dy).sqrt() * 10_000.0) as u64;
        }
    }
    d
}

/// Held-Karp exact solution (reference optimum).
pub fn held_karp(dist: &[u64], n: usize) -> u64 {
    let full = 1usize << n;
    const INF: u64 = u64::MAX / 4;
    // dp[mask][last] = min cost to start at 0, visit mask, end at last.
    let mut dp = vec![INF; full * n];
    dp[n] = 0;
    for mask in 1..full {
        if mask & 1 == 0 {
            continue;
        }
        for last in 0..n {
            if mask & (1 << last) == 0 {
                continue;
            }
            let cur = dp[mask * n + last];
            if cur >= INF {
                continue;
            }
            for next in 0..n {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let nm = mask | (1 << next);
                let cand = cur + dist[last * n + next];
                if cand < dp[nm * n + next] {
                    dp[nm * n + next] = cand;
                }
            }
        }
    }
    (0..n)
        .map(|last| dp[(full - 1) * n + last].saturating_add(dist[last * n]))
        .min()
        .expect("at least one tour")
}

/// A partial tour record in the shared queue: [depth, length, mask,
/// path...] packed into u64 words.
const REC_WORDS: usize = 24;
const QUEUE_CAP: usize = 4096;

const LOCK_QUEUE: u64 = 0;
const LOCK_BEST: u64 = 1;

/// Cheap admissible lower bound: current length + the minimum outgoing
/// edge of every unvisited city (and of the last city).
fn lower_bound(dist: &[u64], n: usize, mask: u64, last: usize, len: u64) -> u64 {
    let mut bound = len;
    for c in 0..n {
        if c != last && mask & (1 << c) != 0 {
            continue;
        }
        let mut best = u64::MAX;
        for d in 0..n {
            if d != c && (mask & (1 << d) == 0 || d == 0) {
                best = best.min(dist[c * n + d]);
            }
        }
        if best != u64::MAX {
            bound += best;
        }
    }
    bound
}

/// Sequential depth-first solver used for subtrees below the split
/// depth; returns the number of nodes expanded.
#[allow(clippy::too_many_arguments)]
fn solve_local(
    dist: &[u64],
    n: usize,
    mask: u64,
    last: usize,
    len: u64,
    path: &mut Vec<u8>,
    best: &mut u64,
    nodes: &mut u64,
) {
    *nodes += 1;
    if path.len() == n {
        let tour = len + dist[last * n];
        if tour < *best {
            *best = tour;
        }
        return;
    }
    if lower_bound(dist, n, mask, last, len) >= *best {
        return;
    }
    for next in 1..n {
        if mask & (1 << next) != 0 {
            continue;
        }
        path.push(next as u8);
        solve_local(
            dist,
            n,
            mask | (1 << next),
            next,
            len + dist[last * n + next],
            path,
            best,
            nodes,
        );
        path.pop();
    }
}

/// Runs TSP under `protocol` and verifies the optimum against Held-Karp.
pub fn run(protocol: ProtocolKind, nprocs: usize, scale: Scale) -> AppRun {
    run_tuned(protocol, nprocs, scale, &RunOptions::default())
}

/// As [`run`], honouring [`RunOptions`] protocol extensions.
pub fn run_tuned(protocol: ProtocolKind, nprocs: usize, scale: Scale, opts: &RunOptions) -> AppRun {
    let params = TspParams::new(scale);
    let n = params.ncities;
    let dist = distance_matrix(&params);
    let optimum = held_karp(&dist, n);

    let mut dsm = opts.builder(protocol, nprocs).build();
    // Queue: [0] = top, [1] = outstanding work items; records follow.
    let queue: SharedVec<u64> = dsm.alloc_page_aligned::<u64>(2 + QUEUE_CAP * REC_WORDS);
    let best: SharedVec<u64> = dsm.alloc_page_aligned::<u64>(1);

    // Threads backend: the global bound is mirrored in a process-wide
    // atomic so the per-pop probe is a relaxed load instead of a
    // `LOCK_BEST` acquire — at high processor counts the probe is the
    // hottest lock in the suite, and a stale (larger) bound only costs
    // pruning effectiveness, never correctness (the bound decreases
    // monotonically toward the optimum and every value is a real tour
    // length). Improvements CAS the mirror down (`fetch_min`) and
    // still commit to the DSM word under `LOCK_BEST` with the
    // double-check, so the verified result and the simulator path are
    // byte-identical.
    let bound_mirror: Option<Arc<AtomicU64>> =
        (opts.backend == ExecBackend::Threads).then(|| Arc::new(AtomicU64::new(u64::MAX / 4)));

    let dist_for_body = dist.clone();
    let outcome = dsm
        .run(move |p| {
            let dist = &dist_for_body;
            if p.index() == 0 {
                best.set(p, 0, u64::MAX / 4);
                // Seed: the root tour at city 0.
                let rec_base = 2;
                queue.set(p, rec_base, 1); // depth
                queue.set(p, rec_base + 1, 0); // length
                queue.set(p, rec_base + 2, 1); // mask (city 0 visited)
                queue.set(p, rec_base + 3, 0); // path word: city 0
                queue.set(p, 0, 1); // top
                queue.set(p, 1, 1); // outstanding
            }
            p.barrier();

            let mut spins = 0u64;
            loop {
                // Pop one work item inside the queue's critical section;
                // `Err(done)` reports an empty queue.
                let popped = p.critical(LOCK_QUEUE, |p| {
                    let top = queue.get(p, 0);
                    let outstanding = queue.get(p, 1);
                    if top == 0 {
                        return Err(outstanding == 0);
                    }
                    let rec = 2 + ((top - 1) as usize) * REC_WORDS;
                    let depth = queue.get(p, rec) as usize;
                    let len = queue.get(p, rec + 1);
                    let mask = queue.get(p, rec + 2);
                    let mut path = Vec::with_capacity(n);
                    for d in 0..depth {
                        path.push(queue.get(p, rec + 3 + d) as u8);
                    }
                    queue.set(p, 0, top - 1);
                    Ok((depth, len, mask, path))
                });
                let (depth, len, mask, path) = match popped {
                    Err(true) => break, // global termination
                    Err(false) => {
                        spins += 1;
                        assert!(spins < 1_000_000, "TSP termination failure");
                        p.compute(work(200, params.ns_per_node));
                        continue;
                    }
                    Ok(item) => item,
                };

                let last = *path.last().expect("nonempty path") as usize;
                let cur_best = match &bound_mirror {
                    Some(b) => b.load(Ordering::Relaxed),
                    None => p.critical(LOCK_BEST, |p| best.get(p, 0)),
                };

                let mut pushed = 0u64;
                let mut local_best = cur_best;
                let mut nodes = 0u64;
                if lower_bound(dist, n, mask, last, len) < cur_best {
                    if depth < params.split_depth && depth < n {
                        // Expand children back into the shared queue.
                        for next in 1..n {
                            if mask & (1 << next) != 0 {
                                continue;
                            }
                            let nlen = len + dist[last * n + next];
                            if lower_bound(dist, n, mask | (1 << next), next, nlen) >= cur_best {
                                continue;
                            }
                            p.critical(LOCK_QUEUE, |p| {
                                let t = queue.get(p, 0);
                                assert!((t as usize) < QUEUE_CAP, "TSP queue overflow");
                                let nrec = 2 + (t as usize) * REC_WORDS;
                                queue.set(p, nrec, (depth + 1) as u64);
                                queue.set(p, nrec + 1, nlen);
                                queue.set(p, nrec + 2, mask | (1 << next));
                                for (d, c) in path.iter().enumerate() {
                                    queue.set(p, nrec + 3 + d, *c as u64);
                                }
                                queue.set(p, nrec + 3 + depth, next as u64);
                                queue.set(p, 0, t + 1);
                                queue.update(p, 1, |o| o + 1);
                            });
                            pushed += 1;
                        }
                        nodes += 1;
                    } else {
                        // Solve the subtree locally.
                        solve_local(
                            dist,
                            n,
                            mask,
                            last,
                            len,
                            &mut path.clone(),
                            &mut local_best,
                            &mut nodes,
                        );
                    }
                }
                p.compute(work(nodes as usize, params.ns_per_node));

                if local_best < cur_best {
                    if let Some(b) = &bound_mirror {
                        b.fetch_min(local_best, Ordering::Relaxed);
                    }
                    p.critical(LOCK_BEST, |p| {
                        let b = best.get(p, 0);
                        if local_best < b {
                            best.set(p, 0, local_best);
                        }
                    });
                }

                // Account for the completed item (children were already
                // counted when pushed).
                let _ = pushed;
                p.critical(LOCK_QUEUE, |p| queue.update(p, 1, |o| o - 1));
            }
        })
        .expect("TSP run failed");

    let got = outcome.read_elem(&best, 0);
    let ok = got == optimum;
    AppRun {
        outcome,
        ok,
        detail: if ok {
            String::new()
        } else {
            format!("best tour {got}, optimum {optimum}")
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn held_karp_solves_a_triangle() {
        // 3 cities: the only tour length is d01+d12+d20.
        let params = TspParams {
            ncities: 3,
            split_depth: 1,
            seed: 7,
            ns_per_node: 10,
        };
        let d = distance_matrix(&params);
        let hk = held_karp(&d, 3);
        assert_eq!(hk, d[1] + d[3 + 2] + d[3 * 2]);
    }

    #[test]
    fn lower_bound_is_admissible() {
        let params = TspParams::new(Scale::Tiny);
        let d = distance_matrix(&params);
        let n = params.ncities;
        let opt = held_karp(&d, n);
        // Bound at the root must not exceed the optimum.
        assert!(lower_bound(&d, n, 1, 0, 0) <= opt);
    }

    #[test]
    fn parallel_finds_the_optimum_under_all_protocols() {
        for protocol in [
            ProtocolKind::Mw,
            ProtocolKind::Sw,
            ProtocolKind::Wfs,
            ProtocolKind::WfsWg,
        ] {
            let run = run(protocol, 4, Scale::Tiny);
            assert!(run.ok, "{protocol}: {}", run.detail);
        }
    }

    #[test]
    fn single_proc_run_matches_optimum() {
        let run = run(ProtocolKind::Mw, 1, Scale::Tiny);
        assert!(run.ok, "{}", run.detail);
    }
}
