//! The three access-pattern microkernels of the paper's Figure 1 —
//! producer-consumer, migratory, and write-write false sharing — plus
//! the **diff accumulation** pattern of §3.2.
//!
//! These drive the protocol-behaviour discussions in §3.1.1/§3.2 and are
//! used by the test suite and the `fig1` reproduction to demonstrate how
//! each protocol treats each pattern (ownership retained / migrated /
//! refused / diffs accumulated).

use adsm_core::{Dsm, ProtocolKind, RunOutcome, SharedVec, SimTime};

use crate::support::work;

/// Iterations each kernel runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelParams {
    /// Repetitions of the pattern.
    pub iters: usize,
    /// Processors.
    pub nprocs: usize,
    /// Per-element modelled compute (nanoseconds).
    pub ns_per_elem: u64,
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams {
            iters: 6,
            nprocs: 4,
            ns_per_elem: 200,
        }
    }
}

/// Producer-consumer (Fig. 1 top left): processor 0 overwrites a page,
/// everyone else reads it. Under WFS the producer keeps ownership and the
/// page moves without twins or diffs.
pub fn producer_consumer(protocol: ProtocolKind, params: KernelParams) -> RunOutcome {
    let mut dsm = Dsm::builder(protocol).nprocs(params.nprocs).build();
    let page: SharedVec<u64> = dsm.alloc_page_aligned::<u64>(512);
    dsm.run(move |p| {
        for it in 0..params.iters {
            if p.index() == 0 {
                let vals: Vec<u64> = (0..512).map(|i| (it * 1000 + i) as u64).collect();
                page.write_from(p, 0, &vals);
                p.compute(work(512, params.ns_per_elem));
            }
            p.barrier();
            let v = page.get(p, 7);
            assert_eq!(v, (it * 1000 + 7) as u64);
            p.barrier();
        }
    })
    .expect("producer-consumer kernel failed")
}

/// Migratory (Fig. 1 top right): the page travels from processor to
/// processor under a lock, each one rewriting it completely. Under WFS
/// ownership migrates with the page and no twins are made.
pub fn migratory(protocol: ProtocolKind, params: KernelParams) -> RunOutcome {
    let mut dsm = Dsm::builder(protocol).nprocs(params.nprocs).build();
    let page: SharedVec<u64> = dsm.alloc_page_aligned::<u64>(512);
    let nprocs = params.nprocs;
    let out = dsm.run(move |p| {
        for _ in 0..params.iters {
            p.critical(0, |p| {
                let mut vals = page.read_range(p, 0, 512);
                for v in vals.iter_mut() {
                    // Change every byte of every word (true whole-page
                    // granularity).
                    *v = v.wrapping_add(0x0101_0101_0101_0101);
                }
                page.write_from(p, 0, &vals);
                p.compute(work(512, params.ns_per_elem));
            });
        }
        p.barrier();
    });
    let out = out.expect("migratory kernel failed");
    let vals = out.read_vec(&page);
    let rounds = (params.iters * nprocs) as u64;
    assert!(
        vals.iter()
            .all(|&v| v == 0x0101_0101_0101_0101u64.wrapping_mul(rounds)),
        "migratory kernel produced wrong counts"
    );
    out
}

/// Write-write false sharing (Fig. 1 bottom): every processor repeatedly
/// writes its own quarter of one page with no intervening
/// synchronisation, then all synchronise at a barrier. SW ping-pongs;
/// MW diffs; WFS detects the false sharing via ownership refusals and
/// switches the page to MW mode.
pub fn false_sharing(protocol: ProtocolKind, params: KernelParams) -> RunOutcome {
    let mut dsm = Dsm::builder(protocol).nprocs(params.nprocs).build();
    let page: SharedVec<u64> = dsm.alloc_page_aligned::<u64>(512);
    dsm.run(move |p| {
        let chunk = 512 / p.nprocs();
        let base = p.index() * chunk;
        for it in 0..params.iters {
            for i in 0..chunk {
                page.set(p, base + i, ((it + 1) * (base + i + 1)) as u64);
                p.compute(SimTime::from_ns(params.ns_per_elem * 20));
            }
            p.barrier();
            // Read a neighbour's element written in the same epoch.
            let nb = ((p.index() + 1) % p.nprocs()) * chunk;
            assert_eq!(page.get(p, nb), ((it + 1) * (nb + 1)) as u64);
            p.barrier();
        }
    })
    .expect("false-sharing kernel failed")
}

/// Diff accumulation (§3.2): a sequence of writers completely overwrite
/// the same page one after another (barrier-ordered); a reader that
/// touched the page early and reads it again only at the end. Under MW
/// the reader must fetch and apply the diff of **every** intervening
/// interval — *"even if the modifications overwrite each other. This
/// causes extra data to be sent"* — while the adaptive protocols move
/// one whole page. The returned outcome's `DiffReply` traffic measures
/// the accumulation.
pub fn diff_accumulation(protocol: ProtocolKind, params: KernelParams) -> RunOutcome {
    let mut dsm = Dsm::builder(protocol).nprocs(params.nprocs).build();
    let page: SharedVec<u64> = dsm.alloc_page_aligned::<u64>(512);
    let rounds = params.iters;
    // Full-width values: every byte of every word changes each round, so
    // the per-interval diff really is page-sized (values below 2^32 would
    // leave the high half of each u64 untouched and halve the diff).
    let val = |round: usize, i: usize| {
        (((round + 1) * 1000 + i) as u64).wrapping_mul(0x0101_0101_0101_0101)
    };
    let out = dsm.run(move |p| {
        // Everyone (the eventual reader included) holds an initial copy.
        assert_eq!(page.get(p, 0), 0);
        p.barrier();
        for it in 0..rounds {
            // One designated writer per round, never processor 0.
            let writer = 1 + it % (p.nprocs() - 1);
            if p.index() == writer {
                let vals: Vec<u64> = (0..512).map(|i| val(it + 1, i)).collect();
                page.write_from(p, 0, &vals);
                p.compute(work(512, params.ns_per_elem));
            }
            p.barrier();
        }
        // The reader returns after all the overwrites.
        if p.index() == 0 {
            let vals = page.read_range(p, 0, 512);
            for (i, v) in vals.iter().enumerate() {
                assert_eq!(*v, val(rounds, i), "stale word {i}");
            }
        }
        p.barrier();
    });
    out.expect("diff-accumulation kernel failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsm_core::MsgKind;

    const ALL: [ProtocolKind; 4] = [
        ProtocolKind::Mw,
        ProtocolKind::Sw,
        ProtocolKind::Wfs,
        ProtocolKind::WfsWg,
    ];

    #[test]
    fn kernels_run_under_all_protocols() {
        let params = KernelParams {
            iters: 3,
            ..KernelParams::default()
        };
        for k in ALL {
            producer_consumer(k, params);
            migratory(k, params);
            false_sharing(k, params);
            diff_accumulation(k, params);
        }
    }

    #[test]
    fn mw_accumulates_diffs_where_adaptive_moves_one_page() {
        // §3.2: with 9 barrier-ordered whole-page overwrites, MW's diff
        // traffic carries each overwrite as its own (page-sized) diff;
        // WFS transfers pages and never requests a diff; WFS+WG measures
        // the large granularity and switches the page to SW mode.
        let params = KernelParams {
            iters: 9,
            ..KernelParams::default()
        };
        let mw = diff_accumulation(ProtocolKind::Mw, params).report;
        let wfs = diff_accumulation(ProtocolKind::Wfs, params).report;
        let wg = diff_accumulation(ProtocolKind::WfsWg, params).report;

        let mw_diff_bytes = mw.net.bytes(MsgKind::DiffReply);
        assert!(
            mw_diff_bytes as usize > 6 * adsm_core::PAGE_SIZE,
            "MW should ship several page-sized diffs (got {mw_diff_bytes} B)"
        );
        assert_eq!(
            wfs.net.bytes(MsgKind::DiffReply),
            0,
            "WFS keeps the page in SW mode: whole pages, no diffs"
        );
        assert!(
            wg.net.bytes(MsgKind::DiffReply) < mw_diff_bytes / 2,
            "WFS+WG must stop diffing once it has measured the granularity"
        );
        // The adaptive protocols move less total data than MW's
        // accumulated diffs on this pattern.
        assert!(wfs.net.total_bytes() < mw.net.total_bytes());
    }

    #[test]
    fn wfs_handles_each_pattern_as_the_paper_describes() {
        let params = KernelParams::default();

        // Producer-consumer: ownership stays with the producer; no twins.
        let pc = producer_consumer(ProtocolKind::Wfs, params);
        assert_eq!(pc.report.proto.twins_created, 0);
        assert_eq!(pc.report.proto.ownership_refusals, 0);

        // Migratory: ownership moves; still no twins.
        let mig = migratory(ProtocolKind::Wfs, params);
        assert!(mig.report.proto.ownership_grants > 0);
        assert_eq!(mig.report.proto.twins_created, 0);

        // False sharing: refusals push the page to MW mode.
        let fs = false_sharing(ProtocolKind::Wfs, params);
        assert!(fs.report.proto.ownership_refusals > 0);
        assert!(fs.report.proto.twins_created > 0);
    }

    #[test]
    fn sw_moves_most_data_under_false_sharing() {
        let params = KernelParams::default();
        let sw = false_sharing(ProtocolKind::Sw, params);
        let wfs = false_sharing(ProtocolKind::Wfs, params);
        let mw = false_sharing(ProtocolKind::Mw, params);
        assert!(sw.report.net.total_bytes() > wfs.report.net.total_bytes());
        assert!(sw.report.net.total_bytes() > mw.report.net.total_bytes());
    }
}
