//! Property-based tests of the twin/diff machinery.

use adsm_mempage::{Diff, PAGE_SIZE, WORD_SIZE};
use proptest::prelude::*;

/// A page described as a sparse set of byte edits over a base value.
fn page_strategy() -> impl Strategy<Value = Vec<u8>> {
    (
        any::<u8>(),
        prop::collection::vec((0usize..PAGE_SIZE, any::<u8>()), 0..64),
    )
        .prop_map(|(base, edits)| {
            let mut page = vec![base; PAGE_SIZE];
            for (i, v) in edits {
                page[i] = v;
            }
            page
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// apply(encode(twin, cur), twin) == cur — the fundamental round trip.
    #[test]
    fn encode_apply_round_trip(twin in page_strategy(), cur in page_strategy()) {
        let diff = Diff::encode(&twin, &cur);
        let mut target = twin.clone();
        diff.apply(&mut target);
        prop_assert_eq!(target, cur);
    }

    /// Encoding a page against itself is empty, and applying an empty diff
    /// is the identity.
    #[test]
    fn self_diff_is_identity(page in page_strategy(), other in page_strategy()) {
        let diff = Diff::encode(&page, &page);
        prop_assert!(diff.is_empty());
        let mut target = other.clone();
        diff.apply(&mut target);
        prop_assert_eq!(target, other);
    }

    /// Words outside the diff are never touched by apply().
    #[test]
    fn apply_touches_only_modified_words(
        twin in page_strategy(),
        cur in page_strategy(),
        canvas in page_strategy(),
    ) {
        let diff = Diff::encode(&twin, &cur);
        let mut target = canvas.clone();
        diff.apply(&mut target);
        for w in 0..(PAGE_SIZE / WORD_SIZE) {
            let r = w * WORD_SIZE..(w + 1) * WORD_SIZE;
            if twin[r.clone()] == cur[r.clone()] {
                prop_assert_eq!(&target[r.clone()], &canvas[r.clone()],
                    "untouched word {} was modified", w);
            } else {
                prop_assert_eq!(&target[r.clone()], &cur[r.clone()],
                    "modified word {} not applied", w);
            }
        }
    }

    /// The windowed encoder agrees with the full scan whenever the
    /// window covers every modified byte — the contract the dirty
    /// watermarks guarantee: edits are confined to a random window and
    /// the window is additionally widened by random slack.
    #[test]
    fn encode_span_matches_full_scan(
        base in page_strategy(),
        (lo, hi) in (0usize..PAGE_SIZE, 0usize..=PAGE_SIZE)
            .prop_map(|(a, b)| (a.min(b), a.max(b))),
        edits in prop::collection::vec((0usize..PAGE_SIZE, any::<u8>()), 0..32),
        slack in (0usize..128, 0usize..128),
    ) {
        let twin = base.clone();
        let mut cur = base;
        for (i, v) in edits {
            if i >= lo && i < hi {
                cur[i] = v;
            }
        }
        let full = Diff::encode(&twin, &cur);
        let mut windowed = Diff::default();
        // Exact window.
        Diff::encode_span_into(&twin, &cur, lo, hi, &mut windowed);
        prop_assert_eq!(&windowed, &full);
        // Widened window (the watermark is allowed to be conservative).
        let wlo = lo.saturating_sub(slack.0);
        let whi = (hi + slack.1).min(PAGE_SIZE);
        Diff::encode_span_into(&twin, &cur, wlo, whi, &mut windowed);
        prop_assert_eq!(&windowed, &full);
    }

    /// Diff size accounting: modified_bytes is word-aligned, bounded by the
    /// page size, and wire_size is consistent with it.
    #[test]
    fn size_accounting(twin in page_strategy(), cur in page_strategy()) {
        let diff = Diff::encode(&twin, &cur);
        prop_assert_eq!(diff.modified_bytes() % WORD_SIZE, 0);
        prop_assert!(diff.modified_bytes() <= PAGE_SIZE);
        prop_assert!(diff.wire_size() >= diff.modified_bytes());
        prop_assert!(diff.run_count() <= diff.modified_bytes() / WORD_SIZE + 1);
    }

    /// The chunked encoder is run-for-run identical to the naive
    /// word-scan reference: same runs, same offsets, same bytes, same
    /// wire size.
    #[test]
    fn chunked_encode_matches_naive_reference(
        twin in page_strategy(),
        cur in page_strategy(),
    ) {
        let chunked = Diff::encode(&twin, &cur);
        let naive = Diff::encode_naive(&twin, &cur);
        prop_assert_eq!(&chunked, &naive);
        prop_assert_eq!(chunked.run_count(), naive.run_count());
        prop_assert_eq!(chunked.modified_bytes(), naive.modified_bytes());
        prop_assert_eq!(chunked.wire_size(), naive.wire_size());
    }

    /// Buffer-reusing `encode_into` produces the same diff as the
    /// allocating API, whatever state the reused diff was left in, and
    /// `apply_onto` round-trips through a caller-provided buffer.
    #[test]
    fn pooled_encode_into_and_apply_round_trip(
        twin_a in page_strategy(),
        cur_a in page_strategy(),
        twin_b in page_strategy(),
        cur_b in page_strategy(),
    ) {
        let mut reused = Diff::default();
        // First fill leaves runs/data buffers behind for the second
        // encode to recycle.
        Diff::encode_into(&twin_a, &cur_a, &mut reused);
        prop_assert_eq!(&reused, &Diff::encode(&twin_a, &cur_a));

        Diff::encode_into(&twin_b, &cur_b, &mut reused);
        prop_assert_eq!(&reused, &Diff::encode(&twin_b, &cur_b));

        let mut out = vec![0xAAu8; PAGE_SIZE];
        reused.apply_onto(&twin_b, &mut out);
        prop_assert_eq!(out, cur_b);
    }

    /// `apply_many` over a random happened-before chain — each page
    /// derived from the previous by random edits, each diff encoded
    /// against its predecessor — is byte-for-byte the sequential apply,
    /// and lands on the chain's final page.
    #[test]
    fn apply_many_matches_sequential_over_chains(
        base in page_strategy(),
        edit_sets in prop::collection::vec(
            prop::collection::vec((0usize..PAGE_SIZE, any::<u8>()), 0..48),
            0..6,
        ),
    ) {
        let mut pages = vec![base.clone()];
        let mut diffs = Vec::new();
        for edits in &edit_sets {
            let mut next = pages.last().expect("nonempty").clone();
            for &(i, v) in edits {
                next[i] = v;
            }
            diffs.push(Diff::encode(pages.last().expect("nonempty"), &next));
            pages.push(next);
        }
        let refs: Vec<&Diff> = diffs.iter().collect();
        let mut seq = base.clone();
        for d in &refs {
            d.apply(&mut seq);
        }
        let mut merged = base.clone();
        Diff::apply_many(&refs, &mut merged);
        prop_assert_eq!(&merged, &seq);
        prop_assert_eq!(&merged, pages.last().expect("nonempty"));
    }

    /// `apply_many` equals sequential apply for *arbitrary* diff lists
    /// on an arbitrary canvas: overlapping runs, empty diffs, repeated
    /// diffs — last writer wins per word either way.
    #[test]
    fn apply_many_matches_sequential_on_any_canvas(
        canvas in page_strategy(),
        sources in prop::collection::vec(
            (page_strategy(), page_strategy()),
            0..5,
        ),
        include_empty in any::<bool>(),
    ) {
        let mut diffs: Vec<Diff> = sources
            .iter()
            .map(|(twin, cur)| Diff::encode(twin, cur))
            .collect();
        if include_empty {
            diffs.insert(diffs.len() / 2, Diff::default());
        }
        // Re-apply the first diff at the end too (the merge procedure's
        // own-delta case: a processor's old diff rides behind foreign
        // ones).
        if let Some(first) = diffs.first().cloned() {
            diffs.push(first);
        }
        let refs: Vec<&Diff> = diffs.iter().collect();
        let mut seq = canvas.clone();
        for d in &refs {
            d.apply(&mut seq);
        }
        let mut merged = canvas.clone();
        Diff::apply_many(&refs, &mut merged);
        prop_assert_eq!(merged, seq);
    }

    /// Applying two diffs with disjoint word sets commutes.
    #[test]
    fn disjoint_diffs_commute(
        base in page_strategy(),
        edits_a in prop::collection::vec((0usize..512, any::<u8>()), 1..32),
        edits_b in prop::collection::vec((512usize..1024, any::<u8>()), 1..32),
    ) {
        // Builds two diffs over disjoint word ranges (words 0..128 and 128..256).
        let mut pa = base.clone();
        for &(w, v) in &edits_a {
            pa[w * WORD_SIZE % 512] = v;
        }
        let mut pb = base.clone();
        for &(w, v) in &edits_b {
            let off = 512 + (w - 512) % 512;
            pb[off] = v;
        }
        let da = Diff::encode(&base, &pa);
        let db = Diff::encode(&base, &pb);
        prop_assert!(!da.overlaps(&db));

        let mut ab = base.clone();
        da.apply(&mut ab);
        db.apply(&mut ab);
        let mut ba = base.clone();
        db.apply(&mut ba);
        da.apply(&mut ba);
        prop_assert_eq!(ab, ba);
    }
}
