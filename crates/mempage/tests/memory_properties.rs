//! Property tests of the software MMU: fault-before-effect semantics,
//! lowest-faulting-page reporting, and page-boundary behaviour — the
//! invariants the protocols rely on when a single bulk access spans
//! pages with mixed rights.

use adsm_mempage::{AccessRights, FaultKind, PageId, PagedMemory, PAGE_SIZE};
use proptest::prelude::*;

const NPAGES: usize = 4;

fn rights_strategy() -> impl Strategy<Value = Vec<AccessRights>> {
    prop::collection::vec(
        prop_oneof![
            Just(AccessRights::None),
            Just(AccessRights::Read),
            Just(AccessRights::Write),
        ],
        NPAGES,
    )
}

fn span_strategy() -> impl Strategy<Value = (usize, usize)> {
    // Arbitrary [addr, addr+len) within the space, len >= 1.
    (0usize..NPAGES * PAGE_SIZE - 1)
        .prop_flat_map(|addr| (Just(addr), 1usize..=(NPAGES * PAGE_SIZE - addr)))
}

fn memory_with(rights: &[AccessRights]) -> PagedMemory {
    let mut mem = PagedMemory::new(NPAGES);
    for (i, &r) in rights.iter().enumerate() {
        mem.set_rights(PageId::new(i), r);
    }
    mem
}

fn pages_of(addr: usize, len: usize) -> impl Iterator<Item = usize> {
    let first = addr / PAGE_SIZE;
    let last = (addr + len - 1) / PAGE_SIZE;
    first..=last
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A read succeeds iff every touched page is readable, and the fault
    /// (when any) names the lowest-indexed denying page.
    #[test]
    fn read_faults_name_the_first_denying_page(
        rights in rights_strategy(),
        (addr, len) in span_strategy(),
    ) {
        let mem = memory_with(&rights);
        let denied: Vec<usize> = pages_of(addr, len)
            .filter(|&pg| !rights[pg].readable())
            .collect();
        match mem.try_read(addr, len) {
            Ok(bytes) => {
                prop_assert!(denied.is_empty());
                prop_assert_eq!(bytes.len(), len);
            }
            Err(fault) => {
                prop_assert_eq!(fault.kind, FaultKind::Read);
                prop_assert_eq!(fault.page.index(), denied[0]);
            }
        }
    }

    /// A faulting write is all-or-nothing: no byte of the target range
    /// changes, even for the pages that *were* writable.
    #[test]
    fn faulting_writes_leave_memory_untouched(
        rights in rights_strategy(),
        (addr, len) in span_strategy(),
        fill in any::<u8>(),
    ) {
        let mut mem = memory_with(&rights);
        let before: Vec<u8> = mem.raw(0, NPAGES * PAGE_SIZE).to_vec();
        let data = vec![fill.wrapping_add(1); len];
        let denied: Vec<usize> = pages_of(addr, len)
            .filter(|&pg| !rights[pg].writable())
            .collect();
        match mem.try_write(addr, &data) {
            Ok(()) => {
                prop_assert!(denied.is_empty());
                prop_assert_eq!(mem.raw(addr, len), &data[..]);
                // Bytes outside the range are untouched.
                prop_assert_eq!(mem.raw(0, addr), &before[..addr]);
            }
            Err(fault) => {
                prop_assert_eq!(fault.kind, FaultKind::Write);
                prop_assert_eq!(fault.page.index(), denied[0]);
                prop_assert_eq!(mem.raw(0, NPAGES * PAGE_SIZE), &before[..]);
            }
        }
    }

    /// `first_fault` agrees with `try_read`/`try_write` without touching
    /// anything.
    #[test]
    fn first_fault_predicts_the_checked_ops(
        rights in rights_strategy(),
        (addr, len) in span_strategy(),
    ) {
        let mut mem = memory_with(&rights);
        let rf = mem.first_fault(addr, len, FaultKind::Read);
        prop_assert_eq!(rf, mem.try_read(addr, len).err());
        let wf = mem.first_fault(addr, len, FaultKind::Write);
        let data = vec![0u8; len];
        prop_assert_eq!(wf, mem.try_write(addr, &data).err());
    }

    /// Installing a page replaces exactly that page.
    #[test]
    fn install_replaces_one_page_only(
        page in 0usize..NPAGES,
        fill in 1u8..,
    ) {
        let mut mem = PagedMemory::new(NPAGES);
        mem.install_page(PageId::new(page), &vec![fill; PAGE_SIZE]);
        for pg in 0..NPAGES {
            let expect = if pg == page { fill } else { 0 };
            prop_assert!(
                mem.page(PageId::new(pg)).iter().all(|&b| b == expect),
                "page {} corrupted", pg
            );
        }
        // Install does not change rights.
        prop_assert_eq!(mem.rights(PageId::new(page)), AccessRights::None);
    }

    /// Write rights imply read rights (the protocols upgrade Read ->
    /// Write and rely on readability never being lost by the upgrade).
    #[test]
    fn writable_pages_are_readable(
        rights in rights_strategy(),
        (addr, len) in span_strategy(),
    ) {
        let mut mem = memory_with(&rights);
        let data = vec![7u8; len];
        if mem.try_write(addr, &data).is_ok() {
            prop_assert!(mem.try_read(addr, len).is_ok());
        }
    }
}
