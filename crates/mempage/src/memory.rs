use std::fmt;

use crate::{PageId, PAGE_SIZE};

/// Software page protection, mirroring the rights an `mprotect`-based DSM
/// would set on each page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum AccessRights {
    /// Page is invalid; any access faults.
    #[default]
    None,
    /// Page is read-only; writes fault (write trapping for twin creation
    /// or ownership acquisition).
    Read,
    /// Page is fully accessible.
    Write,
}

impl AccessRights {
    /// Can the page be read under these rights?
    #[inline]
    pub fn readable(self) -> bool {
        self != AccessRights::None
    }

    /// Can the page be written under these rights?
    #[inline]
    pub fn writable(self) -> bool {
        self == AccessRights::Write
    }

    /// Does `kind` succeed under these rights?
    #[inline]
    fn permits(self, kind: FaultKind) -> bool {
        match kind {
            FaultKind::Read => self.readable(),
            FaultKind::Write => self.writable(),
        }
    }
}

impl fmt::Display for AccessRights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessRights::None => "none",
            AccessRights::Read => "ro",
            AccessRights::Write => "rw",
        };
        f.write_str(s)
    }
}

/// Kind of a denied access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A load touched a page without read rights.
    Read,
    /// A store touched a page without write rights.
    Write,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Read => f.write_str("read"),
            FaultKind::Write => f.write_str("write"),
        }
    }
}

/// A denied access: the software analogue of SIGSEGV delivered by the MMU.
///
/// The protocol layer resolves the fault (fetching pages/diffs, acquiring
/// ownership, twinning) and the access is retried.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PageFault {
    /// Page whose protection denied the access.
    pub page: PageId,
    /// Whether the denied access was a load or a store.
    pub kind: FaultKind,
}

impl fmt::Display for PageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} fault on {}", self.kind, self.page)
    }
}

impl std::error::Error for PageFault {}

/// One processor's copy of the shared address space, with per-page
/// software protection.
///
/// `PagedMemory` is purely mechanical: it checks rights and moves bytes.
/// Which rights a page has at any moment is protocol policy and lives in
/// `adsm-core`.
///
/// # Examples
///
/// ```
/// use adsm_mempage::{AccessRights, FaultKind, PagedMemory, PageId};
///
/// let mut mem = PagedMemory::new(2);
/// // Everything starts invalid: loads fault.
/// assert_eq!(mem.try_read(0, 4).unwrap_err().kind, FaultKind::Read);
///
/// mem.set_rights(PageId::new(0), AccessRights::Write);
/// mem.try_write(0, &7u32.to_le_bytes()).unwrap();
/// let mut buf = [0u8; 4];
/// mem.try_read(0, 4).map(|b| buf.copy_from_slice(b)).unwrap();
/// assert_eq!(u32::from_le_bytes(buf), 7);
/// ```
#[derive(Clone, Debug)]
pub struct PagedMemory {
    bytes: Vec<u8>,
    rights: Vec<AccessRights>,
}

impl PagedMemory {
    /// Creates a zero-filled space of `npages` pages, all invalid.
    pub fn new(npages: usize) -> Self {
        PagedMemory {
            bytes: vec![0; npages * PAGE_SIZE],
            rights: vec![AccessRights::None; npages],
        }
    }

    /// Number of pages in the space.
    pub fn page_len(&self) -> usize {
        self.rights.len()
    }

    /// Size of the space in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Current rights of `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn rights(&self, page: PageId) -> AccessRights {
        self.rights[page.index()]
    }

    /// Sets the rights of `page` (the software `mprotect`).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn set_rights(&mut self, page: PageId, rights: AccessRights) {
        self.rights[page.index()] = rights;
    }

    /// Checked load of `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns the first [`PageFault`] if any touched page lacks read
    /// rights; no bytes are returned in that case.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the address space.
    #[inline]
    pub fn try_read(&self, addr: usize, len: usize) -> Result<&[u8], PageFault> {
        self.check(addr, len, FaultKind::Read)?;
        Ok(&self.bytes[addr..addr + len])
    }

    /// Checked store of `data` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns the first [`PageFault`] if any touched page lacks write
    /// rights; the store is not performed in that case (stores are
    /// all-or-nothing at the API level, unlike hardware, so a fault can
    /// never leave a half-written range).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the address space.
    #[inline]
    pub fn try_write(&mut self, addr: usize, data: &[u8]) -> Result<(), PageFault> {
        self.check(addr, data.len(), FaultKind::Write)?;
        self.bytes[addr..addr + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// First page in `[addr, addr+len)` whose rights deny `kind`, if any.
    #[inline]
    pub fn first_fault(&self, addr: usize, len: usize, kind: FaultKind) -> Option<PageFault> {
        self.check(addr, len, kind).err()
    }

    /// Rights check for `[addr, addr+len)` in a single pass over the
    /// touched page indices. The common case — an access within one page
    /// — costs one bounds assert and one table load; no iterator is
    /// constructed.
    #[inline]
    fn check(&self, addr: usize, len: usize, kind: FaultKind) -> Result<(), PageFault> {
        assert!(
            addr + len <= self.bytes.len(),
            "access [{addr}, +{len}) beyond shared space of {} bytes",
            self.bytes.len()
        );
        if len == 0 {
            return Ok(());
        }
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for idx in first..=last {
            if !self.rights[idx].permits(kind) {
                return Err(PageFault {
                    page: PageId::new(idx),
                    kind,
                });
            }
        }
        Ok(())
    }

    /// Unchecked view of one page (protocol-side use: serving remote
    /// requests, twinning, diffing — the protocol bypasses protection just
    /// like a kernel would).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page(&self, page: PageId) -> &[u8] {
        let base = page.base_addr();
        &self.bytes[base..base + PAGE_SIZE]
    }

    /// Unchecked mutable view of one page (protocol-side use).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page_mut(&mut self, page: PageId) -> &mut [u8] {
        let base = page.base_addr();
        &mut self.bytes[base..base + PAGE_SIZE]
    }

    /// Replaces the contents of `page` (installing a fetched copy).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one page or `page` is out of range.
    pub fn install_page(&mut self, page: PageId, data: &[u8]) {
        assert_eq!(data.len(), PAGE_SIZE, "installed copy must be one page");
        self.page_mut(page).copy_from_slice(data);
    }

    /// Unchecked read used by the protocol and by post-run collection.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the address space.
    pub fn raw(&self, addr: usize, len: usize) -> &[u8] {
        &self.bytes[addr..addr + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessRights as AR;

    #[test]
    fn fresh_memory_is_invalid() {
        let mem = PagedMemory::new(3);
        for i in 0..3 {
            assert_eq!(mem.rights(PageId::new(i)), AR::None);
        }
        assert_eq!(mem.byte_len(), 3 * PAGE_SIZE);
    }

    #[test]
    fn read_requires_read_rights() {
        let mut mem = PagedMemory::new(1);
        assert!(mem.try_read(0, 1).is_err());
        mem.set_rights(PageId::new(0), AR::Read);
        assert!(mem.try_read(0, 1).is_ok());
    }

    #[test]
    fn write_requires_write_rights() {
        let mut mem = PagedMemory::new(1);
        mem.set_rights(PageId::new(0), AR::Read);
        let fault = mem.try_write(0, &[1]).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Write);
        assert_eq!(fault.page, PageId::new(0));
        mem.set_rights(PageId::new(0), AR::Write);
        assert!(mem.try_write(0, &[1]).is_ok());
    }

    #[test]
    fn spanning_access_faults_on_first_bad_page() {
        let mut mem = PagedMemory::new(2);
        mem.set_rights(PageId::new(0), AR::Write);
        // Page 1 still invalid: a write spanning both faults on page 1.
        let fault = mem.try_write(PAGE_SIZE - 2, &[1, 2, 3, 4]).unwrap_err();
        assert_eq!(fault.page, PageId::new(1));
        // And nothing was written to page 0.
        assert_eq!(mem.raw(PAGE_SIZE - 2, 2), &[0, 0]);
    }

    #[test]
    fn install_page_replaces_contents() {
        let mut mem = PagedMemory::new(1);
        let data = vec![7u8; PAGE_SIZE];
        mem.install_page(PageId::new(0), &data);
        assert_eq!(mem.page(PageId::new(0)), &data[..]);
    }

    #[test]
    #[should_panic(expected = "beyond shared space")]
    fn out_of_range_access_panics() {
        let mem = PagedMemory::new(1);
        let _ = mem.try_read(PAGE_SIZE - 1, 2);
    }
}
