use std::fmt;

use crate::{PageId, PAGE_SIZE};

/// Software page protection, mirroring the rights an `mprotect`-based DSM
/// would set on each page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum AccessRights {
    /// Page is invalid; any access faults.
    #[default]
    None,
    /// Page is read-only; writes fault (write trapping for twin creation
    /// or ownership acquisition).
    Read,
    /// Page is fully accessible.
    Write,
}

impl AccessRights {
    /// Can the page be read under these rights?
    #[inline]
    pub fn readable(self) -> bool {
        self != AccessRights::None
    }

    /// Can the page be written under these rights?
    #[inline]
    pub fn writable(self) -> bool {
        self == AccessRights::Write
    }

    /// Does `kind` succeed under these rights?
    #[inline]
    fn permits(self, kind: FaultKind) -> bool {
        match kind {
            FaultKind::Read => self.readable(),
            FaultKind::Write => self.writable(),
        }
    }
}

impl fmt::Display for AccessRights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessRights::None => "none",
            AccessRights::Read => "ro",
            AccessRights::Write => "rw",
        };
        f.write_str(s)
    }
}

/// Kind of a denied access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A load touched a page without read rights.
    Read,
    /// A store touched a page without write rights.
    Write,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Read => f.write_str("read"),
            FaultKind::Write => f.write_str("write"),
        }
    }
}

/// A denied access: the software analogue of SIGSEGV delivered by the MMU.
///
/// The protocol layer resolves the fault (fetching pages/diffs, acquiring
/// ownership, twinning) and the access is retried.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PageFault {
    /// Page whose protection denied the access.
    pub page: PageId,
    /// Whether the denied access was a load or a store.
    pub kind: FaultKind,
}

impl fmt::Display for PageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} fault on {}", self.kind, self.page)
    }
}

impl std::error::Error for PageFault {}

/// One processor's copy of the shared address space, with per-page
/// software protection.
///
/// `PagedMemory` is purely mechanical: it checks rights and moves bytes.
/// Which rights a page has at any moment is protocol policy and lives in
/// `adsm-core`.
///
/// # Examples
///
/// ```
/// use adsm_mempage::{AccessRights, FaultKind, PagedMemory, PageId};
///
/// let mut mem = PagedMemory::new(2);
/// // Everything starts invalid: loads fault.
/// assert_eq!(mem.try_read(0, 4).unwrap_err().kind, FaultKind::Read);
///
/// mem.set_rights(PageId::new(0), AccessRights::Write);
/// mem.try_write(0, &7u32.to_le_bytes()).unwrap();
/// let mut buf = [0u8; 4];
/// mem.try_read(0, 4).map(|b| buf.copy_from_slice(b)).unwrap();
/// assert_eq!(u32::from_le_bytes(buf), 7);
/// ```
#[derive(Clone, Debug)]
pub struct PagedMemory {
    bytes: Vec<u8>,
    rights: Vec<AccessRights>,
    /// Per-page dirty watermarks `[lo, hi)` (page-relative bytes): the
    /// window every modification since the last
    /// [`clear_dirty_span`](PagedMemory::clear_dirty_span) is known to
    /// fall into. `lo > hi` encodes "clean". Checked mutation paths
    /// ([`try_write`](PagedMemory::try_write),
    /// [`write_unchecked`](PagedMemory::write_unchecked)) widen the
    /// window exactly; unchecked ones
    /// ([`page_mut`](PagedMemory::page_mut),
    /// [`install_page`](PagedMemory::install_page)) widen it to the
    /// whole page, so the window is always a sound bound for diffing.
    dirty: Vec<(u16, u16)>,
}

/// "Clean" watermark sentinel: `lo` past the page end, `hi` at zero.
const CLEAN: (u16, u16) = (PAGE_SIZE as u16, 0);

// The watermarks store page-relative offsets in u16.
const _: () = assert!(PAGE_SIZE <= u16::MAX as usize);

impl PagedMemory {
    /// Creates a zero-filled space of `npages` pages, all invalid.
    pub fn new(npages: usize) -> Self {
        PagedMemory {
            bytes: vec![0; npages * PAGE_SIZE],
            rights: vec![AccessRights::None; npages],
            dirty: vec![CLEAN; npages],
        }
    }

    /// Widens the dirty watermark of every page touched by
    /// `[addr, addr+len)` with the touched sub-range.
    #[inline]
    fn widen_dirty(&mut self, addr: usize, len: usize) {
        if len == 0 {
            return;
        }
        let end = addr + len;
        let first = addr / PAGE_SIZE;
        let last = (end - 1) / PAGE_SIZE;
        for idx in first..=last {
            let base = idx * PAGE_SIZE;
            let lo = addr.max(base) - base;
            let hi = end.min(base + PAGE_SIZE) - base;
            let w = &mut self.dirty[idx];
            w.0 = w.0.min(lo as u16);
            w.1 = w.1.max(hi as u16);
        }
    }

    /// Number of pages in the space.
    pub fn page_len(&self) -> usize {
        self.rights.len()
    }

    /// Size of the space in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Current rights of `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn rights(&self, page: PageId) -> AccessRights {
        self.rights[page.index()]
    }

    /// Sets the rights of `page` (the software `mprotect`).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn set_rights(&mut self, page: PageId, rights: AccessRights) {
        self.rights[page.index()] = rights;
    }

    /// Checked load of `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns the first [`PageFault`] if any touched page lacks read
    /// rights; no bytes are returned in that case.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the address space.
    #[inline]
    pub fn try_read(&self, addr: usize, len: usize) -> Result<&[u8], PageFault> {
        self.check(addr, len, FaultKind::Read)?;
        Ok(&self.bytes[addr..addr + len])
    }

    /// Checked store of `data` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns the first [`PageFault`] if any touched page lacks write
    /// rights; the store is not performed in that case (stores are
    /// all-or-nothing at the API level, unlike hardware, so a fault can
    /// never leave a half-written range).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the address space.
    #[inline]
    pub fn try_write(&mut self, addr: usize, data: &[u8]) -> Result<(), PageFault> {
        self.check(addr, data.len(), FaultKind::Write)?;
        self.bytes[addr..addr + data.len()].copy_from_slice(data);
        self.widen_dirty(addr, data.len());
        Ok(())
    }

    /// Store of `data` at `addr` with **no rights check**: the write
    /// half of a span guard, whose rights were checked once when the
    /// guard faulted its whole span in. Widens the dirty watermark by
    /// exactly the stored range.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the address space. Debug builds
    /// additionally assert every touched page is writable (a guard
    /// holding the memory lock cannot lose rights mid-span).
    #[inline]
    pub fn write_unchecked(&mut self, addr: usize, data: &[u8]) {
        debug_assert!(
            self.check(addr, data.len(), FaultKind::Write).is_ok(),
            "write_unchecked outside a writable span"
        );
        self.bytes[addr..addr + data.len()].copy_from_slice(data);
        self.widen_dirty(addr, data.len());
    }

    /// Mutable slice of `[addr, addr+len)` with **no rights check** —
    /// the bulk-write surface of a span guard whose rights were checked
    /// at creation. The whole range counts as written: the dirty
    /// watermarks of every covered page are widened over it immediately
    /// (callers that write only part of the span should use
    /// [`write_unchecked`](PagedMemory::write_unchecked) instead, which
    /// tracks exactly).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the address space. Debug builds
    /// additionally assert every touched page is writable.
    #[inline]
    pub fn span_unchecked_mut(&mut self, addr: usize, len: usize) -> &mut [u8] {
        debug_assert!(
            self.check(addr, len, FaultKind::Write).is_ok(),
            "span_unchecked_mut outside a writable span"
        );
        self.widen_dirty(addr, len);
        &mut self.bytes[addr..addr + len]
    }

    /// The dirty watermark of `page`: the page-relative byte window
    /// `[lo, hi)` every modification since the last
    /// [`clear_dirty_span`](PagedMemory::clear_dirty_span) is contained
    /// in, or `None` if the page is clean. The window is conservative
    /// (never narrower than the true modified range), which is what
    /// makes it a sound scan bound for
    /// [`Diff::encode_span_into`](crate::Diff::encode_span_into).
    #[inline]
    pub fn dirty_span(&self, page: PageId) -> Option<(usize, usize)> {
        let (lo, hi) = self.dirty[page.index()];
        (lo < hi).then_some((lo as usize, hi as usize))
    }

    /// Resets `page`'s dirty watermark to clean — called when a twin is
    /// taken, so the watermark bounds exactly the bytes that can differ
    /// from that twin.
    #[inline]
    pub fn clear_dirty_span(&mut self, page: PageId) {
        self.dirty[page.index()] = CLEAN;
    }

    /// First page in `[addr, addr+len)` whose rights deny `kind`, if any.
    #[inline]
    pub fn first_fault(&self, addr: usize, len: usize, kind: FaultKind) -> Option<PageFault> {
        self.check(addr, len, kind).err()
    }

    /// Rights check for `[addr, addr+len)` in a single pass over the
    /// touched page indices. The common case — an access within one page
    /// — costs one bounds assert and one table load; no iterator is
    /// constructed.
    #[inline]
    fn check(&self, addr: usize, len: usize, kind: FaultKind) -> Result<(), PageFault> {
        assert!(
            addr + len <= self.bytes.len(),
            "access [{addr}, +{len}) beyond shared space of {} bytes",
            self.bytes.len()
        );
        if len == 0 {
            return Ok(());
        }
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for idx in first..=last {
            if !self.rights[idx].permits(kind) {
                return Err(PageFault {
                    page: PageId::new(idx),
                    kind,
                });
            }
        }
        Ok(())
    }

    /// Unchecked view of one page (protocol-side use: serving remote
    /// requests, twinning, diffing — the protocol bypasses protection just
    /// like a kernel would).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page(&self, page: PageId) -> &[u8] {
        let base = page.base_addr();
        &self.bytes[base..base + PAGE_SIZE]
    }

    /// Unchecked mutable view of one page (protocol-side use). The
    /// caller may rewrite anything, so the page's dirty watermark
    /// conservatively widens to the whole page.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page_mut(&mut self, page: PageId) -> &mut [u8] {
        self.dirty[page.index()] = (0, PAGE_SIZE as u16);
        let base = page.base_addr();
        &mut self.bytes[base..base + PAGE_SIZE]
    }

    /// Replaces the contents of `page` (installing a fetched copy).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one page or `page` is out of range.
    pub fn install_page(&mut self, page: PageId, data: &[u8]) {
        assert_eq!(data.len(), PAGE_SIZE, "installed copy must be one page");
        self.page_mut(page).copy_from_slice(data);
    }

    /// Unchecked read used by the protocol and by post-run collection.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the address space.
    pub fn raw(&self, addr: usize, len: usize) -> &[u8] {
        &self.bytes[addr..addr + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessRights as AR;

    #[test]
    fn fresh_memory_is_invalid() {
        let mem = PagedMemory::new(3);
        for i in 0..3 {
            assert_eq!(mem.rights(PageId::new(i)), AR::None);
        }
        assert_eq!(mem.byte_len(), 3 * PAGE_SIZE);
    }

    #[test]
    fn read_requires_read_rights() {
        let mut mem = PagedMemory::new(1);
        assert!(mem.try_read(0, 1).is_err());
        mem.set_rights(PageId::new(0), AR::Read);
        assert!(mem.try_read(0, 1).is_ok());
    }

    #[test]
    fn write_requires_write_rights() {
        let mut mem = PagedMemory::new(1);
        mem.set_rights(PageId::new(0), AR::Read);
        let fault = mem.try_write(0, &[1]).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Write);
        assert_eq!(fault.page, PageId::new(0));
        mem.set_rights(PageId::new(0), AR::Write);
        assert!(mem.try_write(0, &[1]).is_ok());
    }

    #[test]
    fn spanning_access_faults_on_first_bad_page() {
        let mut mem = PagedMemory::new(2);
        mem.set_rights(PageId::new(0), AR::Write);
        // Page 1 still invalid: a write spanning both faults on page 1.
        let fault = mem.try_write(PAGE_SIZE - 2, &[1, 2, 3, 4]).unwrap_err();
        assert_eq!(fault.page, PageId::new(1));
        // And nothing was written to page 0.
        assert_eq!(mem.raw(PAGE_SIZE - 2, 2), &[0, 0]);
    }

    #[test]
    fn install_page_replaces_contents() {
        let mut mem = PagedMemory::new(1);
        let data = vec![7u8; PAGE_SIZE];
        mem.install_page(PageId::new(0), &data);
        assert_eq!(mem.page(PageId::new(0)), &data[..]);
    }

    #[test]
    #[should_panic(expected = "beyond shared space")]
    fn out_of_range_access_panics() {
        let mem = PagedMemory::new(1);
        let _ = mem.try_read(PAGE_SIZE - 1, 2);
    }

    #[test]
    fn dirty_span_tracks_checked_writes() {
        let mut mem = PagedMemory::new(2);
        let pg = PageId::new(0);
        mem.set_rights(pg, AR::Write);
        assert_eq!(mem.dirty_span(pg), None);
        mem.try_write(8, &[1, 2, 3, 4]).unwrap();
        assert_eq!(mem.dirty_span(pg), Some((8, 12)));
        mem.try_write(100, &[9]).unwrap();
        assert_eq!(mem.dirty_span(pg), Some((8, 101)));
        // Zero-length writes leave the watermark alone.
        mem.try_write(0, &[]).unwrap();
        assert_eq!(mem.dirty_span(pg), Some((8, 101)));
        mem.clear_dirty_span(pg);
        assert_eq!(mem.dirty_span(pg), None);
    }

    #[test]
    fn dirty_span_splits_across_pages() {
        let mut mem = PagedMemory::new(2);
        mem.set_rights(PageId::new(0), AR::Write);
        mem.set_rights(PageId::new(1), AR::Write);
        mem.write_unchecked(PAGE_SIZE - 2, &[1, 2, 3, 4]);
        assert_eq!(
            mem.dirty_span(PageId::new(0)),
            Some((PAGE_SIZE - 2, PAGE_SIZE))
        );
        assert_eq!(mem.dirty_span(PageId::new(1)), Some((0, 2)));
    }

    #[test]
    fn unchecked_mutation_widens_to_full_page() {
        let mut mem = PagedMemory::new(1);
        let pg = PageId::new(0);
        let _ = mem.page_mut(pg);
        assert_eq!(mem.dirty_span(pg), Some((0, PAGE_SIZE)));
        mem.clear_dirty_span(pg);
        mem.install_page(pg, &vec![3u8; PAGE_SIZE]);
        assert_eq!(mem.dirty_span(pg), Some((0, PAGE_SIZE)));
    }
}
