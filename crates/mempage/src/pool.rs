//! Recycling pool for page-sized byte buffers.
//!
//! The protocol layer's hot paths — twin creation at the first write of
//! an interval, whole-page fetches, lazy-diff materialisation, merge —
//! all need a scratch or retained buffer of exactly [`PAGE_SIZE`] bytes.
//! Allocating those from the global heap puts one `malloc`/`free` pair
//! on every fault and every interval close, which dominates the
//! simulator's per-event constants at scale. A [`PagePool`] keeps the
//! freed buffers and hands them back out: after a short warm-up the
//! steady state performs **zero** heap allocations for page buffers (the
//! `pages_created` counter stops moving; see the `allocation_free`
//! integration test in `adsm-core`).
//!
//! The free list is **sharded per thread**: every thread keeps a small
//! local cache of buffers per pool (plain `Vec` behind a `thread_local`,
//! no lock, no atomics on the hit path), with a mutex-guarded global
//! spill list behind it. Drops beyond the local cap spill to the global
//! list; local misses refill from it in batches. This removes the
//! mutex round-trip that made a pooled copy ~2× the cost of a raw
//! `to_vec` when the free list was a single locked `Vec`, while still
//! letting buffers migrate between threads (a twin created by one
//! simulated processor's thread is routinely dropped by another's
//! during validation).
//!
//! [`PageBuf`] is the RAII handle: it derefs to `[u8]`, and dropping it
//! returns the buffer to the pool it came from. Clones draw a fresh
//! buffer from the same pool, so `Clone`-able protocol state (twins,
//! pending diffs) keeps working unchanged.

use std::cell::RefCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use parking_lot::Mutex;

use crate::PAGE_SIZE;

type PageBox = Box<[u8; PAGE_SIZE]>;

/// Buffers a thread parks locally per pool before drops spill to the
/// shared list. Sized to the per-processor working set of the protocol
/// hot paths (twin + fetch + merge scratch per in-flight page) with
/// headroom; beyond this recycling through the global list is cheap
/// relative to the burst that produced it.
const LOCAL_CAP: usize = 64;
/// Buffers moved from the global spill list into a thread's cache per
/// refill, so a miss burst pays the spill mutex once, not per buffer.
const REFILL_BATCH: usize = 16;
/// Distinct pools one thread tracks before the oldest cache is evicted
/// (its buffers fall back to the heap). Bounds the memory a long-lived
/// thread can pin across many short-lived worlds.
const LOCAL_POOLS: usize = 8;

thread_local! {
    /// This thread's buffer caches, keyed by pool id (pool count per
    /// thread is tiny, so a linear scan beats any map).
    static LOCAL_CACHES: RefCell<Vec<(u64, Vec<PageBox>)>> =
        const { RefCell::new(Vec::new()) };
}

/// Pool identities are process-unique so a stale thread-local cache can
/// never serve a new pool that reuses a dead pool's address.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide id → pool directory. [`PageBuf`] carries only its pool's
/// id (no `Arc`, so the per-buffer hot path pays no refcount traffic);
/// the rare paths that need the pool itself — local-cache overflow on
/// drop, cloning a buffer — resolve it here. Entries are weak: a dead
/// pool resolves to `None` and its stragglers return to the heap.
fn registry() -> &'static Mutex<PoolRegistry> {
    static REGISTRY: OnceLock<Mutex<PoolRegistry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

type PoolRegistry = Vec<(u64, Weak<PoolInner>)>;

fn pool_by_id(id: u64) -> Option<PagePool> {
    let reg = registry().lock();
    reg.iter()
        .find(|(pid, _)| *pid == id)
        .and_then(|(_, weak)| weak.upgrade())
        .map(|inner| PagePool { inner })
}

struct PoolInner {
    /// Process-unique identity, the thread-local cache key.
    id: u64,
    /// Shared overflow list: drops beyond [`LOCAL_CAP`] land here and
    /// local misses refill from here before touching the heap.
    spill: Mutex<Vec<PageBox>>,
    /// Buffers ever allocated from the heap (pool misses).
    created: AtomicU64,
    /// Buffers handed out from a free list (pool hits).
    reused: AtomicU64,
}

impl Default for PoolInner {
    fn default() -> Self {
        PoolInner {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            spill: Mutex::new(Vec::new()),
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }
}

/// A shared pool of recycled [`PAGE_SIZE`] buffers.
///
/// Cloning the pool is cheap and yields a handle to the same free lists.
///
/// # Examples
///
/// ```
/// use adsm_mempage::{PagePool, PAGE_SIZE};
///
/// let pool = PagePool::new();
/// let a = pool.get_zeroed();
/// assert_eq!(a.len(), PAGE_SIZE);
/// assert_eq!(pool.pages_created(), 1);
/// drop(a);
/// let b = pool.get_zeroed(); // recycled, not reallocated
/// assert_eq!(pool.pages_created(), 1);
/// assert_eq!(pool.pages_reused(), 1);
/// drop(b);
/// ```
#[derive(Clone)]
pub struct PagePool {
    inner: Arc<PoolInner>,
}

impl Default for PagePool {
    fn default() -> Self {
        let inner = Arc::new(PoolInner::default());
        registry().lock().push((inner.id, Arc::downgrade(&inner)));
        PagePool { inner }
    }
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        registry().lock().retain(|(pid, _)| *pid != self.id);
    }
}

impl PagePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws a buffer with unspecified contents (recycled bytes or
    /// zeros). Use when the caller overwrites the whole page anyway.
    pub fn get(&self) -> PageBuf {
        let buf = match self.take_recycled() {
            Some(b) => {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => {
                self.inner.created.fetch_add(1, Ordering::Relaxed);
                Box::new([0u8; PAGE_SIZE])
            }
        };
        PageBuf {
            buf: Some(buf),
            pool_id: self.inner.id,
        }
    }

    /// Pops from this thread's cache, refilling from the global spill
    /// list on a local miss. `None` means the heap must serve the get.
    fn take_recycled(&self) -> Option<PageBox> {
        let id = self.inner.id;
        let local = LOCAL_CACHES
            .try_with(|caches| {
                let mut caches = caches.borrow_mut();
                caches
                    .iter_mut()
                    .find(|(pid, _)| *pid == id)
                    .and_then(|(_, bufs)| bufs.pop())
            })
            .ok()
            .flatten();
        if local.is_some() {
            return local;
        }
        // Local miss: pay the spill mutex once and carry a batch home.
        let mut spill = self.inner.spill.lock();
        let buf = spill.pop()?;
        let keep = spill.len() - spill.len().min(REFILL_BATCH);
        let batch: Vec<PageBox> = spill.drain(keep..).collect();
        drop(spill);
        if !batch.is_empty() {
            // On thread teardown (no TLS) the batch drops with the
            // unexecuted closure: the buffers return to the heap.
            let _ = LOCAL_CACHES.try_with(|caches| {
                Self::local_entry(&mut caches.borrow_mut(), id).extend(batch);
            });
        }
        Some(buf)
    }

    /// The cache entry for pool `id`, created (with bounded eviction of
    /// the least-recently-created entry) if absent.
    fn local_entry(caches: &mut Vec<(u64, Vec<PageBox>)>, id: u64) -> &mut Vec<PageBox> {
        if let Some(i) = caches.iter().position(|(pid, _)| *pid == id) {
            return &mut caches[i].1;
        }
        if caches.len() >= LOCAL_POOLS {
            caches.remove(0); // oldest pool's buffers return to the heap
        }
        caches.push((id, Vec::new()));
        &mut caches.last_mut().expect("just pushed").1
    }

    /// Draws a zero-filled buffer.
    pub fn get_zeroed(&self) -> PageBuf {
        let mut b = self.get();
        b.fill(0);
        b
    }

    /// Draws a buffer holding a copy of `src`.
    ///
    /// # Panics
    ///
    /// Panics unless `src` is exactly one page long.
    pub fn get_copy(&self, src: &[u8]) -> PageBuf {
        assert_eq!(src.len(), PAGE_SIZE, "source must be one page");
        let mut b = self.get();
        b.copy_from_slice(src);
        b
    }

    /// Buffers ever allocated from the heap (pool misses). Flat in
    /// steady state: the working set is served entirely by recycling.
    pub fn pages_created(&self) -> u64 {
        self.inner.created.load(Ordering::Relaxed)
    }

    /// Buffers served from a free list (pool hits).
    pub fn pages_reused(&self) -> u64 {
        self.inner.reused.load(Ordering::Relaxed)
    }

    /// Buffers currently parked for this pool that the calling thread
    /// can see: its own local cache plus the global spill list. (Other
    /// threads' local caches are invisible by design.)
    pub fn free_buffers(&self) -> usize {
        let id = self.inner.id;
        let local = LOCAL_CACHES
            .try_with(|caches| {
                caches
                    .borrow()
                    .iter()
                    .find(|(pid, _)| *pid == id)
                    .map_or(0, |(_, bufs)| bufs.len())
            })
            .unwrap_or(0);
        local + self.inner.spill.lock().len()
    }
}

impl fmt::Debug for PagePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagePool")
            .field("created", &self.pages_created())
            .field("reused", &self.pages_reused())
            .field("free", &self.free_buffers())
            .finish()
    }
}

/// An owned page buffer on loan from a [`PagePool`].
///
/// Dereferences to a `[u8]` of exactly [`PAGE_SIZE`] bytes; dropping the
/// handle returns the buffer to its pool (the dropping thread's local
/// cache, or the shared spill list once that cache is full). Cloning
/// draws a new buffer from the same pool and copies the contents.
pub struct PageBuf {
    /// `Some` for the handle's whole life; taken only in `Drop`.
    buf: Option<PageBox>,
    /// Identity of the owning pool (see [`registry`]); an id instead of
    /// an `Arc` keeps refcount traffic off the per-buffer hot path.
    pool_id: u64,
}

impl PageBuf {
    #[inline]
    fn bytes(&self) -> &[u8; PAGE_SIZE] {
        self.buf.as_ref().expect("buffer present until drop")
    }

    #[inline]
    fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        self.buf.as_mut().expect("buffer present until drop")
    }
}

impl Deref for PageBuf {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.bytes()[..]
    }
}

impl DerefMut for PageBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.bytes_mut()[..]
    }
}

impl AsRef<[u8]> for PageBuf {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Clone for PageBuf {
    fn clone(&self) -> Self {
        match pool_by_id(self.pool_id) {
            Some(pool) => pool.get_copy(self),
            // The pool is gone: keep the contents alive off-pool (the
            // clone recycles nowhere and frees on drop).
            None => PageBuf {
                buf: Some(Box::new(*self.bytes())),
                pool_id: self.pool_id,
            },
        }
    }
}

impl Drop for PageBuf {
    fn drop(&mut self) {
        let Some(buf) = self.buf.take() else { return };
        let id = self.pool_id;
        let overflow = LOCAL_CACHES.try_with(|caches| {
            let mut caches = caches.borrow_mut();
            let entry = PagePool::local_entry(&mut caches, id);
            if entry.len() < LOCAL_CAP {
                entry.push(buf);
                None
            } else {
                Some(buf)
            }
        });
        match overflow {
            Ok(None) => {}
            // Local cache full: spill to the pool's shared list (heap
            // if the pool has meanwhile died).
            Ok(Some(buf)) => {
                if let Some(pool) = pool_by_id(id) {
                    pool.inner.spill.lock().push(buf);
                }
            }
            // Thread teardown: TLS is gone and `buf` was dropped with
            // the unexecuted closure — the buffer returns to the heap,
            // which is the right end state for a dying thread.
            Err(_) => {}
        }
    }
}

impl fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageBuf[{} B]", PAGE_SIZE)
    }
}

impl PartialEq for PageBuf {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for PageBuf {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_through_the_pool() {
        let pool = PagePool::new();
        let a = pool.get_copy(&[7u8; PAGE_SIZE]);
        let b = pool.get();
        assert_eq!(pool.pages_created(), 2);
        drop(a);
        drop(b);
        assert_eq!(pool.free_buffers(), 2);
        let c = pool.get();
        assert_eq!(pool.pages_created(), 2, "no fresh allocation");
        assert_eq!(pool.pages_reused(), 1);
        drop(c);
    }

    #[test]
    fn clone_copies_contents_via_the_same_pool() {
        let pool = PagePool::new();
        let mut a = pool.get_zeroed();
        a[10] = 42;
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b[10], 42);
        assert_eq!(pool.pages_created(), 2);
        drop(a);
        drop(b);
        assert_eq!(pool.free_buffers(), 2);
    }

    #[test]
    fn get_copy_rejects_short_sources() {
        let pool = PagePool::new();
        let r = std::panic::catch_unwind(|| pool.get_copy(&[0u8; 8]));
        assert!(r.is_err());
    }

    #[test]
    fn works_with_diff_encode() {
        let pool = PagePool::new();
        let twin = pool.get_zeroed();
        let mut cur = twin.clone();
        cur[0] = 9;
        let d = crate::Diff::encode(&twin, &cur);
        assert_eq!(d.modified_bytes(), crate::WORD_SIZE);
        let mut merged = pool.get_copy(&twin);
        d.apply(&mut merged);
        assert_eq!(merged, cur);
    }

    #[test]
    fn distinct_pools_never_share_thread_caches() {
        let a = PagePool::new();
        let b = PagePool::new();
        drop(a.get()); // lands in this thread's cache for pool a
        let _ = b.get();
        assert_eq!(
            b.pages_created(),
            1,
            "pool b must not be served from pool a's cache"
        );
        assert_eq!(b.pages_reused(), 0);
        assert_eq!(a.free_buffers(), 1);
    }

    #[test]
    fn buffers_dropped_on_another_thread_recycle_via_the_spill() {
        let pool = PagePool::new();
        // Fill one thread's cache past LOCAL_CAP so drops demonstrably
        // spill, then recycle from a different thread.
        let bufs: Vec<_> = (0..LOCAL_CAP + 8).map(|_| pool.get()).collect();
        let created = pool.pages_created();
        let handle = {
            let pool = pool.clone();
            std::thread::spawn(move || {
                drop(bufs); // all land in *this* thread's cache + spill
                pool.free_buffers() // visible: own cache + spill
            })
        };
        let seen_on_worker = handle.join().expect("worker thread");
        assert_eq!(seen_on_worker, LOCAL_CAP + 8);
        // The worker's local cache died with it un-recycled; the spilled
        // overflow is still reachable from here.
        let spilled = pool.free_buffers();
        assert_eq!(spilled, 8);
        for _ in 0..spilled {
            let _ = pool.get();
        }
        assert_eq!(
            pool.pages_created(),
            created,
            "spilled buffers must be recycled, not reallocated"
        );
        assert_eq!(pool.pages_reused(), spilled as u64);
    }
}
