//! Recycling pool for page-sized byte buffers.
//!
//! The protocol layer's hot paths — twin creation at the first write of
//! an interval, whole-page fetches, lazy-diff materialisation, merge —
//! all need a scratch or retained buffer of exactly [`PAGE_SIZE`] bytes.
//! Allocating those from the global heap puts one `malloc`/`free` pair
//! on every fault and every interval close, which dominates the
//! simulator's per-event constants at scale. A [`PagePool`] keeps the
//! freed buffers and hands them back out: after a short warm-up the
//! steady state performs **zero** heap allocations for page buffers (the
//! `pages_created` counter stops moving; see the `allocation_free`
//! integration test in `adsm-core`).
//!
//! [`PageBuf`] is the RAII handle: it derefs to `[u8]`, and dropping it
//! returns the buffer to the pool it came from. Clones draw a fresh
//! buffer from the same pool, so `Clone`-able protocol state (twins,
//! pending diffs) keeps working unchanged.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::PAGE_SIZE;

type PageBox = Box<[u8; PAGE_SIZE]>;

#[derive(Default)]
struct PoolInner {
    free: Mutex<Vec<PageBox>>,
    /// Buffers ever allocated from the heap (pool misses).
    created: AtomicU64,
    /// Buffers handed out from the free list (pool hits).
    reused: AtomicU64,
}

/// A shared pool of recycled [`PAGE_SIZE`] buffers.
///
/// Cloning the pool is cheap and yields a handle to the same free list.
///
/// # Examples
///
/// ```
/// use adsm_mempage::{PagePool, PAGE_SIZE};
///
/// let pool = PagePool::new();
/// let a = pool.get_zeroed();
/// assert_eq!(a.len(), PAGE_SIZE);
/// assert_eq!(pool.pages_created(), 1);
/// drop(a);
/// let b = pool.get_zeroed(); // recycled, not reallocated
/// assert_eq!(pool.pages_created(), 1);
/// assert_eq!(pool.pages_reused(), 1);
/// drop(b);
/// ```
#[derive(Clone, Default)]
pub struct PagePool {
    inner: Arc<PoolInner>,
}

impl PagePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws a buffer with unspecified contents (recycled bytes or
    /// zeros). Use when the caller overwrites the whole page anyway.
    pub fn get(&self) -> PageBuf {
        let recycled = self.inner.free.lock().pop();
        let buf = match recycled {
            Some(b) => {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => {
                self.inner.created.fetch_add(1, Ordering::Relaxed);
                Box::new([0u8; PAGE_SIZE])
            }
        };
        PageBuf {
            buf: Some(buf),
            pool: self.inner.clone(),
        }
    }

    /// Draws a zero-filled buffer.
    pub fn get_zeroed(&self) -> PageBuf {
        let mut b = self.get();
        b.fill(0);
        b
    }

    /// Draws a buffer holding a copy of `src`.
    ///
    /// # Panics
    ///
    /// Panics unless `src` is exactly one page long.
    pub fn get_copy(&self, src: &[u8]) -> PageBuf {
        assert_eq!(src.len(), PAGE_SIZE, "source must be one page");
        let mut b = self.get();
        b.copy_from_slice(src);
        b
    }

    /// Buffers ever allocated from the heap (pool misses). Flat in
    /// steady state: the working set is served entirely by recycling.
    pub fn pages_created(&self) -> u64 {
        self.inner.created.load(Ordering::Relaxed)
    }

    /// Buffers served from the free list (pool hits).
    pub fn pages_reused(&self) -> u64 {
        self.inner.reused.load(Ordering::Relaxed)
    }

    /// Buffers currently parked in the free list.
    pub fn free_buffers(&self) -> usize {
        self.inner.free.lock().len()
    }
}

impl fmt::Debug for PagePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagePool")
            .field("created", &self.pages_created())
            .field("reused", &self.pages_reused())
            .field("free", &self.free_buffers())
            .finish()
    }
}

/// An owned page buffer on loan from a [`PagePool`].
///
/// Dereferences to a `[u8]` of exactly [`PAGE_SIZE`] bytes; dropping the
/// handle returns the buffer to its pool. Cloning draws a new buffer
/// from the same pool and copies the contents.
pub struct PageBuf {
    /// `Some` for the handle's whole life; taken only in `Drop`.
    buf: Option<PageBox>,
    pool: Arc<PoolInner>,
}

impl PageBuf {
    #[inline]
    fn bytes(&self) -> &[u8; PAGE_SIZE] {
        self.buf.as_ref().expect("buffer present until drop")
    }

    #[inline]
    fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        self.buf.as_mut().expect("buffer present until drop")
    }
}

impl Deref for PageBuf {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.bytes()[..]
    }
}

impl DerefMut for PageBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.bytes_mut()[..]
    }
}

impl AsRef<[u8]> for PageBuf {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Clone for PageBuf {
    fn clone(&self) -> Self {
        PagePool {
            inner: self.pool.clone(),
        }
        .get_copy(self)
    }
}

impl Drop for PageBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.free.lock().push(buf);
        }
    }
}

impl fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageBuf[{} B]", PAGE_SIZE)
    }
}

impl PartialEq for PageBuf {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for PageBuf {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_through_the_pool() {
        let pool = PagePool::new();
        let a = pool.get_copy(&[7u8; PAGE_SIZE]);
        let b = pool.get();
        assert_eq!(pool.pages_created(), 2);
        drop(a);
        drop(b);
        assert_eq!(pool.free_buffers(), 2);
        let c = pool.get();
        assert_eq!(pool.pages_created(), 2, "no fresh allocation");
        assert_eq!(pool.pages_reused(), 1);
        drop(c);
    }

    #[test]
    fn clone_copies_contents_via_the_same_pool() {
        let pool = PagePool::new();
        let mut a = pool.get_zeroed();
        a[10] = 42;
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b[10], 42);
        assert_eq!(pool.pages_created(), 2);
        drop(a);
        drop(b);
        assert_eq!(pool.free_buffers(), 2);
    }

    #[test]
    fn get_copy_rejects_short_sources() {
        let pool = PagePool::new();
        let r = std::panic::catch_unwind(|| pool.get_copy(&[0u8; 8]));
        assert!(r.is_err());
    }

    #[test]
    fn works_with_diff_encode() {
        let pool = PagePool::new();
        let twin = pool.get_zeroed();
        let mut cur = twin.clone();
        cur[0] = 9;
        let d = crate::Diff::encode(&twin, &cur);
        assert_eq!(d.modified_bytes(), crate::WORD_SIZE);
        let mut merged = pool.get_copy(&twin);
        d.apply(&mut merged);
        assert_eq!(merged, cur);
    }
}
