/// Plain-old-data element types that can live in the simulated shared
/// address space.
///
/// Values are stored little-endian, independent of the host, so that the
/// byte-level diffing machinery sees a stable representation. The trait is
/// sealed: the DSM only supports the primitive numeric types below, which
/// is what the paper's applications use.
///
/// # Examples
///
/// ```
/// use adsm_mempage::Pod;
///
/// let mut buf = [0u8; 8];
/// 1.5f64.store_le(&mut buf);
/// assert_eq!(f64::load_le(&buf), 1.5);
/// assert_eq!(<f64 as Pod>::SIZE, 8);
/// ```
pub trait Pod: Copy + Default + private::Sealed + 'static {
    /// Size of the element in bytes.
    const SIZE: usize;

    /// Writes the little-endian representation into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`Pod::SIZE`].
    fn store_le(self, buf: &mut [u8]);

    /// Reads a value from the little-endian representation in `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`Pod::SIZE`].
    fn load_le(buf: &[u8]) -> Self;
}

mod private {
    pub trait Sealed {}
}

macro_rules! impl_pod {
    ($($t:ty),*) => {
        $(
            impl private::Sealed for $t {}
            impl Pod for $t {
                const SIZE: usize = std::mem::size_of::<$t>();

                // Inline across crates: these are the per-element
                // encode/decode steps of every span view — as calls they
                // dominate whole-span decodes; inlined they fold into
                // plain unaligned loads/stores and vectorise.
                #[inline]
                fn store_le(self, buf: &mut [u8]) {
                    buf[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
                }

                #[inline]
                fn load_le(buf: &[u8]) -> Self {
                    let mut raw = [0u8; std::mem::size_of::<$t>()];
                    raw.copy_from_slice(&buf[..Self::SIZE]);
                    <$t>::from_le_bytes(raw)
                }
            }
        )*
    };
}

impl_pod!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Pod + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.store_le(&mut buf);
        assert_eq!(T::load_le(&buf), v);
    }

    #[test]
    fn round_trips_all_types() {
        round_trip(0xABu8);
        round_trip(-5i8);
        round_trip(0xBEEFu16);
        round_trip(-12345i16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(-7i32);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(3.25f32);
        round_trip(-1.0e300f64);
    }

    #[test]
    fn representation_is_little_endian() {
        let mut buf = [0u8; 4];
        0x0102_0304u32.store_le(&mut buf);
        assert_eq!(buf, [4, 3, 2, 1]);
    }
}
