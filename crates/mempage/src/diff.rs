use std::fmt;

use crate::{PAGE_SIZE, WORD_SIZE};

const WORDS_PER_PAGE: usize = PAGE_SIZE / WORD_SIZE;

/// Per-diff wire overhead: page id, interval id, run count (TreadMarks
/// ships a small header with every diff).
const DIFF_HEADER_BYTES: usize = 12;
/// Per-run overhead: 16-bit word offset + 16-bit word count.
const RUN_HEADER_BYTES: usize = 4;

/// One maximal run of consecutive modified words.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Run {
    /// Word offset of the run within the page.
    word_offset: u16,
    /// The new bytes of the run (length is a multiple of [`WORD_SIZE`]).
    data: Vec<u8>,
}

/// A run-length encoded record of the modifications made to one page,
/// produced by comparing the page against its *twin* word by word —
/// TreadMarks' diff representation.
///
/// Applying a diff overwrites exactly the words the diff records and
/// leaves every other word untouched, which is what lets multiple
/// concurrent writers of a falsely-shared page merge without losing each
/// other's updates.
///
/// # Examples
///
/// ```
/// use adsm_mempage::{Diff, PAGE_SIZE};
///
/// let twin = vec![1u8; PAGE_SIZE];
/// let mut cur = twin.clone();
/// cur[0] = 9;
/// let d = Diff::encode(&twin, &cur);
/// assert!(!d.is_empty());
/// assert_eq!(d.modified_bytes(), 4); // word granularity
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Diff {
    runs: Vec<Run>,
}

impl Diff {
    /// Compares `current` against `twin` word-by-word and records every
    /// modified run.
    ///
    /// # Panics
    ///
    /// Panics unless both slices are exactly one page long.
    pub fn encode(twin: &[u8], current: &[u8]) -> Self {
        assert_eq!(twin.len(), PAGE_SIZE, "twin must be one page");
        assert_eq!(current.len(), PAGE_SIZE, "page must be one page");
        let mut runs = Vec::new();
        let mut w = 0;
        while w < WORDS_PER_PAGE {
            let off = w * WORD_SIZE;
            if twin[off..off + WORD_SIZE] == current[off..off + WORD_SIZE] {
                w += 1;
                continue;
            }
            // Start of a modified run; extend while words differ.
            let start = w;
            while w < WORDS_PER_PAGE {
                let o = w * WORD_SIZE;
                if twin[o..o + WORD_SIZE] == current[o..o + WORD_SIZE] {
                    break;
                }
                w += 1;
            }
            let byte_start = start * WORD_SIZE;
            let byte_end = w * WORD_SIZE;
            runs.push(Run {
                word_offset: start as u16,
                data: current[byte_start..byte_end].to_vec(),
            });
        }
        Diff { runs }
    }

    /// Overwrites the recorded runs in `page`.
    ///
    /// # Panics
    ///
    /// Panics unless `page` is exactly one page long.
    pub fn apply(&self, page: &mut [u8]) {
        assert_eq!(page.len(), PAGE_SIZE, "target must be one page");
        for run in &self.runs {
            let start = run.word_offset as usize * WORD_SIZE;
            page[start..start + run.data.len()].copy_from_slice(&run.data);
        }
    }

    /// `true` when the twin and the page were identical.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of maximal modified runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total bytes of modified data (a multiple of the word size).
    ///
    /// This is the paper's *write granularity* measure for the page.
    pub fn modified_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.data.len()).sum()
    }

    /// Bytes this diff occupies on the wire and in the diff store:
    /// header + per-run headers + data.
    pub fn wire_size(&self) -> usize {
        DIFF_HEADER_BYTES + self.runs.len() * RUN_HEADER_BYTES + self.modified_bytes()
    }

    /// Do `self` and `other` modify at least one common word?
    ///
    /// Two *concurrent* diffs of the same page that do **not** overlap are
    /// the signature of write-write false sharing; overlapping concurrent
    /// diffs would be a data race in the application.
    pub fn overlaps(&self, other: &Diff) -> bool {
        // Runs are sorted by construction; merge-scan.
        let mut a = self.runs.iter().peekable();
        let mut b = other.runs.iter().peekable();
        while let (Some(ra), Some(rb)) = (a.peek(), b.peek()) {
            let a_start = ra.word_offset as usize;
            let a_end = a_start + ra.data.len() / WORD_SIZE;
            let b_start = rb.word_offset as usize;
            let b_end = b_start + rb.data.len() / WORD_SIZE;
            if a_end <= b_start {
                a.next();
            } else if b_end <= a_start {
                b.next();
            } else {
                return true;
            }
        }
        false
    }
}

impl fmt::Display for Diff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "diff[{} runs, {} B data, {} B wire]",
            self.run_count(),
            self.modified_bytes(),
            self.wire_size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(vals: &[(usize, u8)]) -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        for &(i, v) in vals {
            p[i] = v;
        }
        p
    }

    #[test]
    fn identical_pages_produce_empty_diff() {
        let twin = page_with(&[(5, 1)]);
        let d = Diff::encode(&twin, &twin.clone());
        assert!(d.is_empty());
        assert_eq!(d.modified_bytes(), 0);
        assert_eq!(d.wire_size(), DIFF_HEADER_BYTES);
    }

    #[test]
    fn single_byte_change_costs_one_word() {
        let twin = page_with(&[]);
        let cur = page_with(&[(9, 3)]);
        let d = Diff::encode(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.modified_bytes(), WORD_SIZE);
    }

    #[test]
    fn adjacent_words_coalesce_into_one_run() {
        let twin = page_with(&[]);
        let cur = page_with(&[(0, 1), (4, 2), (8, 3)]);
        let d = Diff::encode(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.modified_bytes(), 3 * WORD_SIZE);
    }

    #[test]
    fn separated_words_form_separate_runs() {
        let twin = page_with(&[]);
        let cur = page_with(&[(0, 1), (100, 2)]);
        let d = Diff::encode(&twin, &cur);
        assert_eq!(d.run_count(), 2);
    }

    #[test]
    fn apply_reproduces_current() {
        let twin = page_with(&[(0, 7)]);
        let cur = page_with(&[(0, 9), (4000, 5)]);
        let d = Diff::encode(&twin, &cur);
        let mut target = twin.clone();
        d.apply(&mut target);
        assert_eq!(target, cur);
    }

    #[test]
    fn apply_leaves_unmodified_words_alone() {
        let twin = page_with(&[]);
        let cur = page_with(&[(8, 1)]);
        let d = Diff::encode(&twin, &cur);
        // Apply onto a page with unrelated content; only word 2 changes.
        let mut target = page_with(&[(100, 42)]);
        d.apply(&mut target);
        assert_eq!(target[100], 42);
        assert_eq!(target[8], 1);
    }

    #[test]
    fn full_page_diff_is_one_run() {
        let twin = vec![0u8; PAGE_SIZE];
        let cur = vec![1u8; PAGE_SIZE];
        let d = Diff::encode(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.modified_bytes(), PAGE_SIZE);
        assert!(d.wire_size() > PAGE_SIZE);
    }

    #[test]
    fn overlap_detection() {
        let twin = vec![0u8; PAGE_SIZE];
        let a = Diff::encode(&twin, &page_with(&[(0, 1)]));
        let b = Diff::encode(&twin, &page_with(&[(2, 1)])); // same word 0
        let c = Diff::encode(&twin, &page_with(&[(40, 1)]));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    #[should_panic(expected = "twin must be one page")]
    fn encode_rejects_short_twin() {
        let _ = Diff::encode(&[0u8; 8], &[0u8; PAGE_SIZE]);
    }
}
