use std::fmt;

use crate::{PAGE_SIZE, WORD_SIZE};

const WORDS_PER_PAGE: usize = PAGE_SIZE / WORD_SIZE;

/// Scan granularity of the chunked encoder: each 64-byte block is
/// compared with one wide vector compare; identical blocks never reach
/// per-word work.
const BLOCK_BYTES: usize = 64;
const BLOCK_WORDS: usize = BLOCK_BYTES / WORD_SIZE;
/// Short-run threshold below which `emit` copies bytes inline instead
/// of calling `memcpy` (two `u64` lanes).
const LANE_BYTES: usize = 8;

const BLOCKS_PER_PAGE: usize = PAGE_SIZE / BLOCK_BYTES;

// The chunked scan assumes pages split evenly into blocks, tracks dirty
// blocks in a single u64 bitmap, and keeps one 16-bit word mask per
// block.
const _: () = assert!(PAGE_SIZE.is_multiple_of(BLOCK_BYTES) && BLOCKS_PER_PAGE <= 64);
const _: () = assert!(BLOCK_WORDS <= 16 && BLOCK_BYTES.is_multiple_of(WORD_SIZE));
// Both dirty-mask implementations compare 32-bit lanes; the mask layout
// is wrong for any other word size.
const _: () = assert!(WORD_SIZE == 4);

/// One 64-byte block as a fixed-size array (bounds-check free access).
type Block = [u8; BLOCK_BYTES];

/// Whether the AVX-512 single-instruction word-mask path is compiled in.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
const HAS_WIDE_MASK: bool = true;
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
const HAS_WIDE_MASK: bool = false;

/// Per-word dirty mask of a block pair: bit `w` is set iff 32-bit word
/// `w` of the blocks differs. One `vpcmpneqd` on a 64-byte block.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline(always)]
fn block_dirty_mask(a: &Block, b: &Block) -> u32 {
    use std::arch::x86_64::{_mm512_cmpneq_epu32_mask, _mm512_loadu_si512};
    // SAFETY: both pointers cover exactly 64 readable bytes (`Block`),
    // the loads are unaligned-tolerant, and `avx512f` is statically
    // enabled under this cfg.
    unsafe {
        let va = _mm512_loadu_si512(a.as_ptr().cast());
        let vb = _mm512_loadu_si512(b.as_ptr().cast());
        _mm512_cmpneq_epu32_mask(va, vb) as u32
    }
}

/// Portable per-word dirty mask, built from `u64` lane XORs. The
/// little-endian lane load guarantees the low half of lane `l` is word
/// `2l` regardless of host endianness.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
#[inline(always)]
fn block_dirty_mask(a: &Block, b: &Block) -> u32 {
    let mut mask = 0u32;
    for l in 0..BLOCK_BYTES / LANE_BYTES {
        let o = l * LANE_BYTES;
        let la = u64::from_le_bytes(a[o..o + LANE_BYTES].try_into().expect("lane"));
        let lb = u64::from_le_bytes(b[o..o + LANE_BYTES].try_into().expect("lane"));
        let x = la ^ lb;
        mask |= (((x & 0xFFFF_FFFF) != 0) as u32) << (2 * l);
        mask |= (((x >> 32) != 0) as u32) << (2 * l + 1);
    }
    mask
}

/// Per-diff wire overhead: page id, interval id, run count (TreadMarks
/// ships a small header with every diff).
const DIFF_HEADER_BYTES: usize = 12;
/// Per-run overhead: 16-bit word offset + 16-bit word count.
const RUN_HEADER_BYTES: usize = 4;

/// One maximal run of consecutive modified words. The run's bytes live
/// in the diff's shared `data` buffer (runs in order, back to back), so
/// a diff costs two allocations however many runs it has.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Run {
    /// Word offset of the run within the page.
    word_offset: u16,
    /// Length of the run in words.
    len_words: u16,
}

impl Run {
    #[inline]
    fn len_bytes(self) -> usize {
        self.len_words as usize * WORD_SIZE
    }
}

/// A run-length encoded record of the modifications made to one page,
/// produced by comparing the page against its *twin* word by word —
/// TreadMarks' diff representation.
///
/// Applying a diff overwrites exactly the words the diff records and
/// leaves every other word untouched, which is what lets multiple
/// concurrent writers of a falsely-shared page merge without losing each
/// other's updates.
///
/// # Examples
///
/// ```
/// use adsm_mempage::{Diff, PAGE_SIZE};
///
/// let twin = vec![1u8; PAGE_SIZE];
/// let mut cur = twin.clone();
/// cur[0] = 9;
/// let d = Diff::encode(&twin, &cur);
/// assert!(!d.is_empty());
/// assert_eq!(d.modified_bytes(), 4); // word granularity
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Diff {
    runs: Vec<Run>,
    /// The modified bytes of every run, concatenated in run order.
    data: Vec<u8>,
}

impl Diff {
    /// Compares `current` against `twin` at word granularity and records
    /// every modified run.
    ///
    /// The scan is chunked: each 64-byte block is compared with one wide
    /// vector comparison (identical blocks are skipped outright) and
    /// only differing blocks fall back to word granularity, so
    /// sparsely-written pages cost far less than a word walk. The
    /// resulting runs — and therefore the wire format — are
    /// byte-for-byte identical to [`Diff::encode_naive`].
    ///
    /// # Panics
    ///
    /// Panics unless both slices are exactly one page long.
    pub fn encode(twin: &[u8], current: &[u8]) -> Self {
        let mut diff = Diff {
            // One allocation each for typical sparse diffs; both grow
            // on demand for dense pages.
            runs: Vec::with_capacity(16),
            data: Vec::with_capacity(16 * WORD_SIZE),
        };
        Self::encode_into(twin, current, &mut diff);
        diff
    }

    /// Like [`Diff::encode`], but reuses `out`'s run and data buffers:
    /// in steady state (same caller re-encoding pages of similar write
    /// density) no heap allocation is performed.
    ///
    /// # Panics
    ///
    /// Panics unless both slices are exactly one page long.
    pub fn encode_into(twin: &[u8], current: &[u8], out: &mut Diff) {
        assert_eq!(twin.len(), PAGE_SIZE, "twin must be one page");
        assert_eq!(current.len(), PAGE_SIZE, "page must be one page");
        Self::encode_blocks_into(twin, current, 0, BLOCKS_PER_PAGE, out);
    }

    /// Like [`Diff::encode_into`], but scans only the 64-byte blocks
    /// overlapping the page-relative byte window `[lo, hi)` — the dirty
    /// watermark a span guard (or any tracked write path) recorded.
    ///
    /// The caller guarantees every byte outside the window is identical
    /// between `twin` and `current` (debug builds assert it); under that
    /// contract the result is run-for-run identical to a full
    /// [`Diff::encode`], because a run can only extend through equal
    /// words inside the scanned window. `lo >= hi` means "nothing was
    /// written" and produces an empty diff.
    ///
    /// # Panics
    ///
    /// Panics unless both slices are exactly one page long and
    /// `hi <= PAGE_SIZE`.
    pub fn encode_span_into(twin: &[u8], current: &[u8], lo: usize, hi: usize, out: &mut Diff) {
        assert_eq!(twin.len(), PAGE_SIZE, "twin must be one page");
        assert_eq!(current.len(), PAGE_SIZE, "page must be one page");
        assert!(hi <= PAGE_SIZE, "window [{lo}, {hi}) beyond the page");
        if lo >= hi {
            out.runs.clear();
            out.data.clear();
            debug_assert_eq!(twin, current, "clean window over a modified page");
            return;
        }
        debug_assert!(
            twin[..lo] == current[..lo] && twin[hi..] == current[hi..],
            "bytes outside the dirty window [{lo}, {hi}) differ"
        );
        Self::encode_blocks_into(
            twin,
            current,
            lo / BLOCK_BYTES,
            hi.div_ceil(BLOCK_BYTES),
            out,
        );
    }

    /// Shared body of [`Diff::encode_into`] and
    /// [`Diff::encode_span_into`]: scans blocks `blo..bhi`.
    fn encode_blocks_into(twin: &[u8], current: &[u8], blo: usize, bhi: usize, out: &mut Diff) {
        out.runs.clear();
        out.data.clear();
        // The open run, [run_start, run_stop) in words; closed and
        // emitted as soon as a word fails to extend it, so runs crossing
        // block boundaries come out maximal exactly like the word scan.
        let mut run_start = 0usize;
        let mut run_stop = 0usize; // == 0: no open run (word 0 opens one)
        let mut emit = |start: usize, stop: usize| {
            out.runs.push(Run {
                word_offset: start as u16,
                len_words: (stop - start) as u16,
            });
            let bytes = &current[start * WORD_SIZE..stop * WORD_SIZE];
            if bytes.len() <= 2 * LANE_BYTES {
                // Short runs dominate fine-grained pages; a byte loop
                // beats a `memcpy` call at these sizes.
                for &b in bytes {
                    out.data.push(b);
                }
            } else {
                out.data.extend_from_slice(bytes);
            }
        };
        // Phase 1: one streaming sweep over both pages building the
        // dirty-block bitmap. With the wide-mask path each block's
        // per-word mask falls out of the same compare; portably, the
        // fixed-size array equality compiles to inline vector compares
        // (no `memcmp` call) and masks are derived in phase 2 instead.
        let mut masks = [0u16; BLOCKS_PER_PAGE];
        let mut dirty_blocks = 0u64;
        {
            let blocks = twin[blo * BLOCK_BYTES..bhi * BLOCK_BYTES]
                .chunks_exact(BLOCK_BYTES)
                .zip(current[blo * BLOCK_BYTES..bhi * BLOCK_BYTES].chunks_exact(BLOCK_BYTES));
            for (bi, (tb, cb)) in blocks.enumerate() {
                let bi = blo + bi;
                let tb: &Block = tb.try_into().expect("exact chunk");
                let cb: &Block = cb.try_into().expect("exact chunk");
                if HAS_WIDE_MASK {
                    let m = block_dirty_mask(tb, cb) as u16;
                    masks[bi] = m;
                    dirty_blocks |= ((m != 0) as u64) << bi;
                } else {
                    dirty_blocks |= ((tb != cb) as u64) << bi;
                }
            }
        }

        // Phase 2: visit only the dirty blocks, in ascending order so
        // runs crossing block boundaries merge through the extend logic.
        while dirty_blocks != 0 {
            let bi = dirty_blocks.trailing_zeros() as usize;
            dirty_blocks &= dirty_blocks - 1;
            let mut mask = if HAS_WIDE_MASK {
                masks[bi] as u32
            } else {
                let o = bi * BLOCK_BYTES;
                let tb: &Block = twin[o..o + BLOCK_BYTES].try_into().expect("block");
                let cb: &Block = current[o..o + BLOCK_BYTES].try_into().expect("block");
                block_dirty_mask(tb, cb)
            };
            // Walk the dirty-word groups of the mask (each group is a
            // maximal run of set bits).
            let base = bi * BLOCK_WORDS;
            while mask != 0 {
                let first = mask.trailing_zeros() as usize;
                let len = (!(mask >> first)).trailing_zeros() as usize;
                let w = base + first;
                if run_stop == w && run_stop != 0 {
                    run_stop = w + len; // contiguous across blocks: extend
                } else {
                    if run_stop != 0 {
                        emit(run_start, run_stop);
                    }
                    run_start = w;
                    run_stop = w + len;
                }
                mask &= !(((1u32 << len) - 1) << first);
            }
        }
        if run_stop != 0 {
            emit(run_start, run_stop);
        }
    }

    /// Reference encoder: the plain one-word-at-a-time scan. Kept as the
    /// correctness and performance baseline for the chunked
    /// [`Diff::encode`] (property tests assert run-for-run equality; the
    /// `hotpaths` benches report the speedup against it).
    ///
    /// # Panics
    ///
    /// Panics unless both slices are exactly one page long.
    pub fn encode_naive(twin: &[u8], current: &[u8]) -> Self {
        assert_eq!(twin.len(), PAGE_SIZE, "twin must be one page");
        assert_eq!(current.len(), PAGE_SIZE, "page must be one page");
        let mut diff = Diff::default();
        let mut w = 0;
        while w < WORDS_PER_PAGE {
            let off = w * WORD_SIZE;
            if twin[off..off + WORD_SIZE] == current[off..off + WORD_SIZE] {
                w += 1;
                continue;
            }
            // Start of a modified run; extend while words differ.
            let start = w;
            while w < WORDS_PER_PAGE {
                let o = w * WORD_SIZE;
                if twin[o..o + WORD_SIZE] == current[o..o + WORD_SIZE] {
                    break;
                }
                w += 1;
            }
            diff.runs.push(Run {
                word_offset: start as u16,
                len_words: (w - start) as u16,
            });
            diff.data
                .extend_from_slice(&current[start * WORD_SIZE..w * WORD_SIZE]);
        }
        diff
    }

    /// Overwrites the recorded runs in `page`.
    ///
    /// # Panics
    ///
    /// Panics unless `page` is exactly one page long.
    pub fn apply(&self, page: &mut [u8]) {
        assert_eq!(page.len(), PAGE_SIZE, "target must be one page");
        let mut off = 0usize;
        for run in &self.runs {
            let start = run.word_offset as usize * WORD_SIZE;
            let len = run.len_bytes();
            page[start..start + len].copy_from_slice(&self.data[off..off + len]);
            off += len;
        }
    }

    /// Copies `base` into the caller-provided `out` buffer and applies
    /// the recorded runs on top — the merge step without an intermediate
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics unless both slices are exactly one page long.
    pub fn apply_onto(&self, base: &[u8], out: &mut [u8]) {
        assert_eq!(base.len(), PAGE_SIZE, "base must be one page");
        out.copy_from_slice(base);
        self.apply(out);
    }

    /// Applies several diffs in one k-way merge pass: byte-for-byte
    /// equivalent to calling [`Diff::apply`] for each diff in slice
    /// order, but every page word is written **at most once**.
    ///
    /// The slice order is the happened-before order of the merge
    /// procedure (§3.1.1): where two diffs modify the same word, the
    /// later diff's value is the one that survives a sequential apply,
    /// so the merge resolves each word to the last covering diff —
    /// last-writer-wins per word is exactly sequential application.
    /// Runs within a diff are offset-sorted by construction, which is
    /// what lets the merge advance one cursor per diff instead of
    /// re-scanning.
    ///
    /// The slice is generic over [`Borrow`](std::borrow::Borrow) so
    /// callers can merge straight from whatever owns their diffs —
    /// `&[&Diff]`, `&[Arc<Diff>]`, or a keyed wrapper — without
    /// materialising a reference list first.
    ///
    /// # Panics
    ///
    /// Panics unless `page` is exactly one page long.
    pub fn apply_many<D: std::borrow::Borrow<Diff>>(diffs: &[D], page: &mut [u8]) {
        assert_eq!(page.len(), PAGE_SIZE, "target must be one page");
        match diffs {
            [] => return,
            [d] => return d.borrow().apply(page),
            _ => {}
        }
        // One cursor per diff: the current run and its data offset.
        struct Cursor<'a> {
            runs: &'a [Run],
            data: &'a [u8],
            idx: usize,
            data_off: usize,
        }
        let mut cursors: Vec<Cursor<'_>> = diffs
            .iter()
            .map(|d| {
                let d = d.borrow();
                Cursor {
                    runs: &d.runs,
                    data: &d.data,
                    idx: 0,
                    data_off: 0,
                }
            })
            .collect();
        // Sweep the page in maximal segments over which the set of
        // covering runs is constant. `pos` is the first unresolved word.
        let mut pos = 0usize;
        loop {
            // Retire runs that end at or before `pos` and find the next
            // segment start: the smallest not-yet-applied run word.
            let mut seg_start = usize::MAX;
            for c in cursors.iter_mut() {
                while let Some(r) = c.runs.get(c.idx) {
                    if r.word_offset as usize + r.len_words as usize <= pos {
                        c.data_off += r.len_bytes();
                        c.idx += 1;
                    } else {
                        break;
                    }
                }
                if let Some(r) = c.runs.get(c.idx) {
                    seg_start = seg_start.min((r.word_offset as usize).max(pos));
                }
            }
            if seg_start == usize::MAX {
                break; // every cursor exhausted
            }
            // The segment ends where any covering run ends or any later
            // run begins; among the runs covering `seg_start`, the diff
            // latest in the slice wins the whole segment.
            let mut seg_end = WORDS_PER_PAGE;
            let mut winner = usize::MAX;
            for (i, c) in cursors.iter().enumerate() {
                let Some(r) = c.runs.get(c.idx) else { continue };
                let start = r.word_offset as usize;
                let end = start + r.len_words as usize;
                if start <= seg_start {
                    // Covers the segment (end > seg_start holds: a run
                    // ending at or before seg_start would have had an
                    // effective start below the minimum).
                    seg_end = seg_end.min(end);
                    winner = i;
                } else {
                    seg_end = seg_end.min(start);
                }
            }
            let c = &cursors[winner];
            let r = c.runs[c.idx];
            let src = c.data_off + (seg_start - r.word_offset as usize) * WORD_SIZE;
            let dst = seg_start * WORD_SIZE;
            let len = (seg_end - seg_start) * WORD_SIZE;
            page[dst..dst + len].copy_from_slice(&c.data[src..src + len]);
            pos = seg_end;
        }
    }

    /// `true` when the twin and the page were identical.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of maximal modified runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total bytes of modified data (a multiple of the word size).
    ///
    /// This is the paper's *write granularity* measure for the page.
    pub fn modified_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bytes this diff occupies on the wire and in the diff store:
    /// header + per-run headers + data.
    pub fn wire_size(&self) -> usize {
        DIFF_HEADER_BYTES + self.runs.len() * RUN_HEADER_BYTES + self.modified_bytes()
    }

    /// Do `self` and `other` modify at least one common word?
    ///
    /// Two *concurrent* diffs of the same page that do **not** overlap are
    /// the signature of write-write false sharing; overlapping concurrent
    /// diffs would be a data race in the application.
    pub fn overlaps(&self, other: &Diff) -> bool {
        // Runs are sorted by construction; merge-scan.
        let mut a = self.runs.iter().peekable();
        let mut b = other.runs.iter().peekable();
        while let (Some(ra), Some(rb)) = (a.peek(), b.peek()) {
            let a_start = ra.word_offset as usize;
            let a_end = a_start + ra.len_words as usize;
            let b_start = rb.word_offset as usize;
            let b_end = b_start + rb.len_words as usize;
            if a_end <= b_start {
                a.next();
            } else if b_end <= a_start {
                b.next();
            } else {
                return true;
            }
        }
        false
    }
}

impl fmt::Display for Diff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "diff[{} runs, {} B data, {} B wire]",
            self.run_count(),
            self.modified_bytes(),
            self.wire_size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(vals: &[(usize, u8)]) -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        for &(i, v) in vals {
            p[i] = v;
        }
        p
    }

    #[test]
    fn identical_pages_produce_empty_diff() {
        let twin = page_with(&[(5, 1)]);
        let d = Diff::encode(&twin, &twin.clone());
        assert!(d.is_empty());
        assert_eq!(d.modified_bytes(), 0);
        assert_eq!(d.wire_size(), DIFF_HEADER_BYTES);
    }

    #[test]
    fn single_byte_change_costs_one_word() {
        let twin = page_with(&[]);
        let cur = page_with(&[(9, 3)]);
        let d = Diff::encode(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.modified_bytes(), WORD_SIZE);
    }

    #[test]
    fn adjacent_words_coalesce_into_one_run() {
        let twin = page_with(&[]);
        let cur = page_with(&[(0, 1), (4, 2), (8, 3)]);
        let d = Diff::encode(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.modified_bytes(), 3 * WORD_SIZE);
    }

    #[test]
    fn separated_words_form_separate_runs() {
        let twin = page_with(&[]);
        let cur = page_with(&[(0, 1), (100, 2)]);
        let d = Diff::encode(&twin, &cur);
        assert_eq!(d.run_count(), 2);
    }

    #[test]
    fn apply_reproduces_current() {
        let twin = page_with(&[(0, 7)]);
        let cur = page_with(&[(0, 9), (4000, 5)]);
        let d = Diff::encode(&twin, &cur);
        let mut target = twin.clone();
        d.apply(&mut target);
        assert_eq!(target, cur);
    }

    #[test]
    fn apply_leaves_unmodified_words_alone() {
        let twin = page_with(&[]);
        let cur = page_with(&[(8, 1)]);
        let d = Diff::encode(&twin, &cur);
        // Apply onto a page with unrelated content; only word 2 changes.
        let mut target = page_with(&[(100, 42)]);
        d.apply(&mut target);
        assert_eq!(target[100], 42);
        assert_eq!(target[8], 1);
    }

    #[test]
    fn full_page_diff_is_one_run() {
        let twin = vec![0u8; PAGE_SIZE];
        let cur = vec![1u8; PAGE_SIZE];
        let d = Diff::encode(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.modified_bytes(), PAGE_SIZE);
        assert!(d.wire_size() > PAGE_SIZE);
    }

    #[test]
    fn overlap_detection() {
        let twin = vec![0u8; PAGE_SIZE];
        let a = Diff::encode(&twin, &page_with(&[(0, 1)]));
        let b = Diff::encode(&twin, &page_with(&[(2, 1)])); // same word 0
        let c = Diff::encode(&twin, &page_with(&[(40, 1)]));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    #[should_panic(expected = "twin must be one page")]
    fn encode_rejects_short_twin() {
        let _ = Diff::encode(&[0u8; 8], &[0u8; PAGE_SIZE]);
    }

    /// Edge cases of the chunked scan: changes at block boundaries, in
    /// the second word of a lane, and runs crossing block edges must
    /// reproduce the naive reference exactly.
    #[test]
    fn chunked_scan_matches_naive_at_boundaries() {
        let cases: &[&[usize]] = &[
            &[],                       // identical pages
            &[0],                      // first byte
            &[PAGE_SIZE - 1],          // last byte
            &[63, 64],                 // run across a block edge
            &[4, 5, 6, 7],             // second word of the first lane
            &[60, 61, 62, 63, 64, 65], // straddles blocks mid-run
            &[127, 128, 191, 192],     // multiple block edges
            &[8, 72, 136],             // same lane offset, many blocks
        ];
        for bytes in cases {
            let twin = vec![0u8; PAGE_SIZE];
            let mut cur = twin.clone();
            for &b in *bytes {
                cur[b] = 0xEE;
            }
            assert_eq!(
                Diff::encode(&twin, &cur),
                Diff::encode_naive(&twin, &cur),
                "mismatch for dirty bytes {bytes:?}"
            );
        }
        // Whole-page change: one maximal run under both encoders.
        let twin = vec![1u8; PAGE_SIZE];
        let cur = vec![2u8; PAGE_SIZE];
        assert_eq!(Diff::encode(&twin, &cur), Diff::encode_naive(&twin, &cur));
    }

    /// The windowed encoder must reproduce the full scan exactly when
    /// the window covers every modified byte — including windows cut
    /// mid-block, at page edges, and empty windows.
    #[test]
    fn encode_span_matches_full_encode() {
        let cases: &[(&[usize], (usize, usize))] = &[
            (&[], (0, 0)),  // clean page, empty window
            (&[0], (0, 1)), // first byte, 1-byte window
            (&[PAGE_SIZE - 1], (PAGE_SIZE - 1, PAGE_SIZE)),
            (&[63, 64], (63, 65)),               // run across a block edge
            (&[100, 101, 102, 103], (100, 104)), // window not block-aligned
            (&[8, 72, 136], (8, 137)),           // multiple blocks
            (&[500], (400, 700)),                // window wider than the change
        ];
        for (bytes, (lo, hi)) in cases {
            let twin = vec![0u8; PAGE_SIZE];
            let mut cur = twin.clone();
            for &b in *bytes {
                cur[b] = 0xEE;
            }
            let mut windowed = Diff::default();
            Diff::encode_span_into(&twin, &cur, *lo, *hi, &mut windowed);
            assert_eq!(
                windowed,
                Diff::encode(&twin, &cur),
                "mismatch for dirty bytes {bytes:?} window [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn encode_span_empty_window_clears_reused_buffers() {
        let twin = page_with(&[]);
        let cur = page_with(&[(8, 1)]);
        let mut d = Diff::encode(&twin, &cur);
        assert!(!d.is_empty());
        Diff::encode_span_into(&twin, &twin.clone(), 10, 10, &mut d);
        assert!(d.is_empty());
    }

    #[test]
    fn encode_into_truncates_stale_runs() {
        let twin = page_with(&[]);
        let dense = page_with(&[(0, 1), (100, 2), (500, 3)]);
        let sparse = page_with(&[(8, 1)]);
        let mut d = Diff::encode(&twin, &dense);
        assert_eq!(d.run_count(), 3);
        Diff::encode_into(&twin, &sparse, &mut d);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d, Diff::encode(&twin, &sparse));
        // And an empty diff clears everything.
        Diff::encode_into(&twin, &twin.clone(), &mut d);
        assert!(d.is_empty());
    }

    /// Applies `diffs` one by one — the reference semantics apply_many
    /// must reproduce.
    fn apply_seq(diffs: &[&Diff], page: &mut [u8]) {
        for d in diffs {
            d.apply(page);
        }
    }

    #[test]
    fn apply_many_of_nothing_is_identity() {
        let mut page = page_with(&[(3, 9)]);
        let orig = page.clone();
        Diff::apply_many::<&Diff>(&[], &mut page);
        assert_eq!(page, orig);
        let empty = Diff::default();
        Diff::apply_many(&[&empty, &empty], &mut page);
        assert_eq!(page, orig);
    }

    #[test]
    fn apply_many_single_matches_apply() {
        let twin = page_with(&[]);
        let cur = page_with(&[(0, 1), (100, 2)]);
        let d = Diff::encode(&twin, &cur);
        let mut a = twin.clone();
        let mut b = twin.clone();
        d.apply(&mut a);
        Diff::apply_many(&[&d], &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn apply_many_disjoint_diffs_union() {
        let twin = page_with(&[]);
        let a = Diff::encode(&twin, &page_with(&[(0, 1)]));
        let b = Diff::encode(&twin, &page_with(&[(400, 2)]));
        let mut merged = twin.clone();
        Diff::apply_many(&[&a, &b], &mut merged);
        assert_eq!(merged, page_with(&[(0, 1), (400, 2)]));
    }

    #[test]
    fn apply_many_last_writer_wins_on_overlap() {
        let twin = page_with(&[]);
        // Both diffs write word 0; runs extend differently.
        let a = Diff::encode(&twin, &page_with(&[(0, 1), (4, 1), (8, 1)]));
        let b = Diff::encode(&twin, &page_with(&[(0, 2)]));
        let mut merged = twin.clone();
        Diff::apply_many(&[&a, &b], &mut merged);
        let mut expect = twin.clone();
        apply_seq(&[&a, &b], &mut expect);
        assert_eq!(merged, expect);
        assert_eq!(merged[0], 2, "later diff wins word 0");
        assert_eq!(merged[4], 1, "earlier diff keeps its exclusive words");
        // And the reverse order flips the winner.
        let mut merged = twin.clone();
        Diff::apply_many(&[&b, &a], &mut merged);
        assert_eq!(merged[0], 1);
    }

    #[test]
    fn apply_many_runs_crossing_each_other() {
        let twin = vec![0u8; PAGE_SIZE];
        // a: words 0..6 = 0xA; b: words 3..9 = 0xB; c: word 5 = 0xC.
        let mut pa = twin.clone();
        pa[0..24].fill(0xA);
        let mut pb = twin.clone();
        pb[12..36].fill(0xB);
        let mut pc = twin.clone();
        pc[20..24].fill(0xC);
        let a = Diff::encode(&twin, &pa);
        let b = Diff::encode(&twin, &pb);
        let c = Diff::encode(&twin, &pc);
        for order in [[&a, &b, &c], [&c, &b, &a], [&b, &a, &c]] {
            let mut merged = page_with(&[(1000, 7)]);
            let mut expect = merged.clone();
            Diff::apply_many(&order, &mut merged);
            apply_seq(&order, &mut expect);
            assert_eq!(merged, expect);
        }
    }

    #[test]
    fn apply_onto_merges_into_caller_buffer() {
        let twin = page_with(&[(0, 7)]);
        let cur = page_with(&[(0, 9), (4000, 5)]);
        let d = Diff::encode(&twin, &cur);
        let mut out = vec![0xFFu8; PAGE_SIZE];
        d.apply_onto(&twin, &mut out);
        assert_eq!(out, cur);
    }
}
