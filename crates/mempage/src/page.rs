use std::fmt;

/// Size of a DSM page in bytes (the SPARC/SunOS page size used by
/// TreadMarks and by the paper's measurements).
pub const PAGE_SIZE: usize = 4096;

/// Diffing granularity in bytes: diffs compare 32-bit words.
pub const WORD_SIZE: usize = 4;

/// Identifier of a page of the shared address space.
///
/// Pages are dense: a shared space of `n` pages uses ids `0..n`.
///
/// # Examples
///
/// ```
/// use adsm_mempage::{page_of, PageId, PAGE_SIZE};
/// assert_eq!(page_of(0), PageId::new(0));
/// assert_eq!(page_of(PAGE_SIZE + 1), PageId::new(1));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(u32);

impl PageId {
    /// Creates a page id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the 32-bit id space.
    pub fn new(index: usize) -> Self {
        assert!(index <= u32::MAX as usize, "page index {index} too large");
        PageId(index as u32)
    }

    /// Dense index of the page, usable for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Byte address of the first byte of this page.
    pub fn base_addr(self) -> usize {
        self.index() * PAGE_SIZE
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

/// Page containing byte address `addr`.
pub fn page_of(addr: usize) -> PageId {
    PageId::new(addr / PAGE_SIZE)
}

/// Number of pages needed to hold `bytes` bytes.
pub fn page_count(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE)
}

/// Iterates over the pages touched by the byte range `[addr, addr+len)`.
///
/// An empty range yields no pages.
///
/// # Examples
///
/// ```
/// use adsm_mempage::{page_span, PageId, PAGE_SIZE};
/// let pages: Vec<_> = page_span(PAGE_SIZE - 1, 2).collect();
/// assert_eq!(pages, vec![PageId::new(0), PageId::new(1)]);
/// assert_eq!(page_span(10, 0).count(), 0);
/// ```
pub fn page_span(addr: usize, len: usize) -> impl Iterator<Item = PageId> {
    let first = addr / PAGE_SIZE;
    let last = if len == 0 {
        first // empty: produce an empty range below
    } else {
        (addr + len - 1) / PAGE_SIZE + 1
    };
    let end = if len == 0 { first } else { last };
    (first..end).map(PageId::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_of_boundaries() {
        assert_eq!(page_of(0).index(), 0);
        assert_eq!(page_of(PAGE_SIZE - 1).index(), 0);
        assert_eq!(page_of(PAGE_SIZE).index(), 1);
    }

    #[test]
    fn page_count_rounds_up() {
        assert_eq!(page_count(0), 0);
        assert_eq!(page_count(1), 1);
        assert_eq!(page_count(PAGE_SIZE), 1);
        assert_eq!(page_count(PAGE_SIZE + 1), 2);
    }

    #[test]
    fn span_within_one_page() {
        let pages: Vec<_> = page_span(8, 16).collect();
        assert_eq!(pages, vec![PageId::new(0)]);
    }

    #[test]
    fn span_across_pages() {
        let pages: Vec<_> = page_span(PAGE_SIZE / 2, 2 * PAGE_SIZE).collect();
        assert_eq!(pages, vec![PageId::new(0), PageId::new(1), PageId::new(2)]);
    }

    #[test]
    fn base_addr_is_page_aligned() {
        assert_eq!(PageId::new(3).base_addr(), 3 * PAGE_SIZE);
    }
}
