//! Paged shared-memory substrate for the `adsm` DSM.
//!
//! Real page-based software DSMs (TreadMarks, CVM, Munin) detect shared
//! accesses with the hardware MMU: pages are `mprotect`ed and the SIGSEGV
//! handler runs the coherence protocol. Driving the MMU from Rust is
//! unsafe and unportable, so this crate provides the **software
//! equivalent**: every page of the simulated shared address space carries
//! [`AccessRights`], every typed access checks them, and a denied access
//! surfaces as a [`PageFault`] value which the protocol layer handles
//! exactly as a signal handler would.
//!
//! The crate also implements the MW-protocol *twinning and diffing*
//! machinery: a [`Diff`] is a run-length encoded record of the 32-bit
//! words of a page that changed relative to its twin, matching the diff
//! representation described in the TreadMarks papers.
//!
//! # Examples
//!
//! ```
//! use adsm_mempage::{Diff, PAGE_SIZE};
//!
//! let twin = vec![0u8; PAGE_SIZE];
//! let mut page = twin.clone();
//! page[100..104].copy_from_slice(&7u32.to_le_bytes());
//!
//! let diff = Diff::encode(&twin, &page);
//! assert_eq!(diff.modified_bytes(), 4);
//!
//! let mut other = vec![0u8; PAGE_SIZE];
//! diff.apply(&mut other);
//! assert_eq!(other, page);
//! ```

mod diff;
mod memory;
mod page;
mod pod;
mod pool;

pub use diff::Diff;
pub use memory::{AccessRights, FaultKind, PageFault, PagedMemory};
pub use page::{page_count, page_of, page_span, PageId, PAGE_SIZE, WORD_SIZE};
pub use pod::Pod;
pub use pool::{PageBuf, PagePool};
