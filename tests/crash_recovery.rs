//! The fault-oracle test layer for crash-recoverable processors and
//! replicated HLRC homes.
//!
//! Every cell of the matrix runs a real application under a scheduled
//! fault — a processor crash (instant reboot), a crash with a down
//! window and explicit restart, or an HLRC home failover — and gates on
//! three oracles:
//!
//! 1. **sequential reference** — the recovered run's shared memory must
//!    still verify against the app's sequential reference (`run.ok`):
//!    recovery rebuilt a view indistinguishable, to the program, from
//!    never having crashed.
//! 2. **fault-free no-op** — the same scenario with its fault schedule
//!    emptied must be *bit-identical* to a plain run (image and counter
//!    digest): the recovery machinery costs nothing until a fault
//!    actually fires.
//! 3. **record → replay** — the chaos journal recorded through the
//!    crash must replay bit-identically (same image, same digest):
//!    crash events, epoch fencing and recovery traffic are all
//!    deterministic, journaled state.

use adsm::netsim::{Fault, FaultKind, Scenario, SimTime};
use adsm::{run_app_tuned, App, ProtocolKind, RunOptions, Scale};

const APPS: [App; 8] = [
    App::Sor,
    App::Is,
    App::Fft3d,
    App::Tsp,
    App::Water,
    App::Shallow,
    App::Barnes,
    App::Ilink,
];

/// The LRC-family protocols with a replicated interval log to recover
/// from (the SW/MW spectrum the paper adapts across, plus the
/// home-based comparator).
const PROTOCOLS: [ProtocolKind; 3] = [ProtocolKind::Wfs, ProtocolKind::Mw, ProtocolKind::Hlrc];

/// FFT bands need `nprocs | n` at tiny scale; 2 divides everything.
fn procs_for(app: App) -> usize {
    if app == App::Fft3d {
        2
    } else {
        4
    }
}

/// FNV-1a over the final coherent memory image (same constants as the
/// golden matrix).
fn image_hash(img: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in img {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Counter digest covering the recovery counters on top of the golden
/// fields.
fn digest(r: &adsm::RunReport) -> [u64; 12] {
    [
        r.time.as_ns(),
        r.net.total_messages(),
        r.net.total_bytes(),
        r.proto.read_faults,
        r.proto.write_faults,
        r.proto.diffs_created,
        r.proto.pages_transferred,
        r.proto.epoch_drops,
        r.proto.proc_crashes,
        r.proto.recovery_refetches,
        r.proto.failover_promotions,
        r.proto.recovery_ns,
    ]
}

/// A scenario with perfect links and the given fault schedule: the only
/// chaos is the schedule itself.
fn faults_only(name: &str, faults: Vec<Fault>) -> Scenario {
    let mut s = Scenario::perfect();
    s.name = name.to_string();
    s.faults = faults;
    s
}

/// Fault-free run time of the combo — the yardstick crash instants are
/// placed against.
fn probe_time(app: App, proto: ProtocolKind, opts: &RunOptions) -> SimTime {
    let run = run_app_tuned(app, proto, procs_for(app), Scale::Tiny, opts);
    assert!(run.ok, "{app}/{proto} probe: {}", run.detail);
    run.outcome.report.time
}

/// Runs one faulted cell and applies the three oracles. Returns the
/// faulted run for extra per-shape assertions.
fn run_cell(app: App, proto: ProtocolKind, base: &RunOptions, scenario: Scenario) -> adsm::AppRun {
    let nprocs = procs_for(app);

    // Oracle 2: emptied fault schedule == plain run, bit for bit.
    let plain = run_app_tuned(app, proto, nprocs, Scale::Tiny, base);
    assert!(plain.ok, "{app}/{proto} plain: {}", plain.detail);
    let mut benign = scenario.clone();
    benign.faults.clear();
    let benign_run = run_app_tuned(
        app,
        proto,
        nprocs,
        Scale::Tiny,
        &RunOptions {
            scenario: Some(benign),
            ..base.clone()
        },
    );
    assert!(benign_run.ok, "{app}/{proto} benign: {}", benign_run.detail);
    assert_eq!(
        image_hash(plain.outcome.image()),
        image_hash(benign_run.outcome.image()),
        "{app}/{proto}: fault-free scenario changed the memory image"
    );
    assert_eq!(
        digest(&plain.outcome.report),
        digest(&benign_run.outcome.report),
        "{app}/{proto}: fault-free scenario changed the counter digest"
    );

    // Oracle 1: the faulted run still verifies against the sequential
    // reference.
    let faulted = run_app_tuned(
        app,
        proto,
        nprocs,
        Scale::Tiny,
        &RunOptions {
            scenario: Some(scenario),
            ..base.clone()
        },
    );
    assert!(faulted.ok, "{app}/{proto} faulted: {}", faulted.detail);

    // Oracle 3: the recorded journal replays bit-identically.
    let journal = faulted
        .outcome
        .journal()
        .expect("chaotic run records a journal")
        .clone();
    let replayed = run_app_tuned(
        app,
        proto,
        nprocs,
        Scale::Tiny,
        &RunOptions {
            replay: Some(journal),
            ..base.clone()
        },
    );
    assert!(replayed.ok, "{app}/{proto} replay: {}", replayed.detail);
    assert_eq!(
        image_hash(faulted.outcome.image()),
        image_hash(replayed.outcome.image()),
        "{app}/{proto}: journal replay diverged from the recorded image"
    );
    assert_eq!(
        digest(&faulted.outcome.report),
        digest(&replayed.outcome.report),
        "{app}/{proto}: journal replay diverged from the recorded digest"
    );

    faulted
}

/// Crash one processor mid-run with an instant reboot (empty down
/// window: no message ever lands in it, but the incarnation's state is
/// lost and its epoch bumped). The recovered run must verify, replay,
/// and account exactly one crash.
#[test]
fn crash_with_instant_restart_recovers_every_app() {
    for app in APPS {
        for proto in PROTOCOLS {
            let base = RunOptions::default();
            let t = probe_time(app, proto, &base);
            let victim = (procs_for(app) - 1) as u32;
            let scenario = faults_only(
                "crash-instant",
                vec![Fault {
                    at: SimTime::from_ns(t.as_ns() / 2),
                    duration: SimTime::ZERO,
                    kind: FaultKind::ProcCrash { proc: victim },
                }],
            );
            let run = run_cell(app, proto, &base, scenario);
            let stats = &run.outcome.report.proto;
            assert_eq!(
                stats.proc_crashes, 1,
                "{app}/{proto}: the scheduled crash did not fire"
            );
            assert!(
                stats.recovery_ns > 0,
                "{app}/{proto}: recovery charged no virtual time"
            );
        }
    }
}

/// Crash one processor with a real down window and an explicit restart:
/// peers that message the dead incarnation hit the epoch fence and
/// retry. The recovered run must verify and replay, including the
/// journaled epoch drops.
#[test]
fn crash_with_down_window_recovers_every_app() {
    for app in APPS {
        for proto in PROTOCOLS {
            let base = RunOptions::default();
            let t = probe_time(app, proto, &base);
            let victim = (procs_for(app) - 1) as u32;
            let crash_at = t.as_ns() / 2;
            let window = (t.as_ns() / 4).max(1);
            let scenario = faults_only(
                "crash-window",
                vec![
                    Fault {
                        at: SimTime::from_ns(crash_at),
                        duration: SimTime::ZERO,
                        kind: FaultKind::ProcCrash { proc: victim },
                    },
                    Fault {
                        at: SimTime::from_ns(crash_at + window),
                        duration: SimTime::ZERO,
                        kind: FaultKind::ProcRestart { proc: victim },
                    },
                ],
            );
            let run = run_cell(app, proto, &base, scenario);
            let stats = &run.outcome.report.proto;
            assert_eq!(
                stats.proc_crashes, 1,
                "{app}/{proto}: the scheduled crash did not fire"
            );
            assert!(
                run.outcome.report.time.as_ns() >= crash_at + window,
                "{app}/{proto}: the run finished inside the down window"
            );
        }
    }
}

/// Decommission an HLRC home mid-run: every page homed there is
/// promoted to its replicated backup, readers are redirected, and the
/// run still verifies and replays.
#[test]
fn home_failover_recovers_every_app() {
    for app in APPS {
        let proto = ProtocolKind::Hlrc;
        let base = RunOptions {
            hlrc_backup: true,
            ..RunOptions::default()
        };
        let t = probe_time(app, proto, &base);
        let scenario = faults_only(
            "home-failover",
            vec![Fault {
                at: SimTime::from_ns(t.as_ns() / 2),
                duration: SimTime::ZERO,
                kind: FaultKind::HomeFailover { home: 0 },
            }],
        );
        let run = run_cell(app, proto, &base, scenario);
        let stats = &run.outcome.report.proto;
        assert!(
            stats.failover_promotions > 0,
            "{app}/{proto}: the failover promoted no pages"
        );
        assert_eq!(
            stats.proc_crashes, 0,
            "{app}/{proto}: failover is not a crash"
        );
    }
}

/// Misconfigured fault schedules are rejected up front, not silently
/// swallowed mid-run.
#[test]
fn fault_schedules_without_recovery_machinery_are_rejected() {
    let crash = faults_only(
        "bad-crash",
        vec![Fault {
            at: SimTime::ZERO,
            duration: SimTime::ZERO,
            kind: FaultKind::ProcCrash { proc: 0 },
        }],
    );
    // SC keeps no interval log to recover from.
    let r = adsm::Dsm::builder(ProtocolKind::Sc)
        .nprocs(2)
        .scenario(crash.clone())
        .build()
        .run(|_| {});
    assert!(matches!(r, Err(adsm::RunError::BadConfig(_))));

    // Failover without the replicated backup home.
    let failover = faults_only(
        "bad-failover",
        vec![Fault {
            at: SimTime::ZERO,
            duration: SimTime::ZERO,
            kind: FaultKind::HomeFailover { home: 0 },
        }],
    );
    let r = adsm::Dsm::builder(ProtocolKind::Hlrc)
        .nprocs(2)
        .scenario(failover.clone())
        .build()
        .run(|_| {});
    assert!(matches!(r, Err(adsm::RunError::BadConfig(_))));

    // Out-of-range victim.
    let oob = faults_only(
        "bad-proc",
        vec![Fault {
            at: SimTime::ZERO,
            duration: SimTime::ZERO,
            kind: FaultKind::ProcCrash { proc: 9 },
        }],
    );
    let r = adsm::Dsm::builder(ProtocolKind::Wfs)
        .nprocs(2)
        .scenario(oob)
        .build()
        .run(|_| {});
    assert!(matches!(r, Err(adsm::RunError::BadConfig(_))));
}
