//! Integration: every application verifies against its sequential
//! reference under the two related-work comparator protocols (SC and
//! HLRC), including every HLRC home-placement policy. These runs are the
//! correctness backing for the §7-positioning measurements of
//! `repro related`.

use adsm::{run_app, run_app_tuned, App, HomePolicy, ProtocolKind, RunOptions, Scale};

#[test]
fn every_app_is_correct_under_sc() {
    for app in App::ALL {
        // FFT bands need nprocs | n at tiny scale; 2 divides everything.
        let nprocs = if app == App::Fft3d { 2 } else { 3 };
        let run = run_app(app, ProtocolKind::Sc, nprocs, Scale::Tiny);
        assert!(run.ok, "{app} under SC x{nprocs}: {}", run.detail);
        assert_eq!(run.outcome.report.proto.twins_created, 0, "{app}: SC twins");
        assert_eq!(run.outcome.report.proto.diffs_created, 0, "{app}: SC diffs");
    }
}

#[test]
fn every_app_is_correct_under_hlrc_round_robin() {
    for app in App::ALL {
        let nprocs = if app == App::Fft3d { 2 } else { 3 };
        let run = run_app(app, ProtocolKind::Hlrc, nprocs, Scale::Tiny);
        assert!(run.ok, "{app} under HLRC x{nprocs}: {}", run.detail);
        let r = &run.outcome.report;
        assert_eq!(r.proto.diffs_alive, 0, "{app}: HLRC must not store diffs");
        assert_eq!(r.proto.gc_runs, 0, "{app}: HLRC never garbage-collects");
    }
}

#[test]
fn every_app_is_correct_under_hlrc_all_policies() {
    for policy in [
        HomePolicy::RoundRobin,
        HomePolicy::FirstTouch,
        HomePolicy::Fixed(0),
        HomePolicy::Fixed(2),
    ] {
        let opts = RunOptions {
            home_policy: policy,
            ..RunOptions::default()
        };
        for app in [App::Sor, App::Is, App::Tsp, App::Ilink] {
            let run = run_app_tuned(app, ProtocolKind::Hlrc, 3, Scale::Tiny, &opts);
            assert!(run.ok, "{app} under HLRC/{policy}: {}", run.detail);
        }
    }
}

#[test]
fn comparators_degenerate_cleanly_on_one_processor() {
    for protocol in ProtocolKind::COMPARATORS {
        for app in [App::Sor, App::Is] {
            let run = run_app(app, protocol, 1, Scale::Tiny);
            assert!(run.ok, "{app} under {protocol} x1: {}", run.detail);
            assert_eq!(
                run.outcome.report.net.total_messages(),
                0,
                "{app} under {protocol}: single-processor runs must not send messages"
            );
        }
    }
}

#[test]
fn every_app_is_correct_under_lazy_mw_diffing() {
    let opts = RunOptions {
        diff_strategy: adsm::DiffStrategy::Lazy,
        ..RunOptions::default()
    };
    for app in App::ALL {
        let nprocs = if app == App::Fft3d { 2 } else { 3 };
        let lazy = run_app_tuned(app, ProtocolKind::Mw, nprocs, Scale::Tiny, &opts);
        assert!(lazy.ok, "{app} under lazy MW: {}", lazy.detail);
        let eager = run_app(app, ProtocolKind::Mw, nprocs, Scale::Tiny);
        assert!(
            lazy.outcome.report.proto.diffs_created <= eager.outcome.report.proto.diffs_created,
            "{app}: lazy must never create more diffs than eager ({} vs {})",
            lazy.outcome.report.proto.diffs_created,
            eager.outcome.report.proto.diffs_created
        );
    }
}

#[test]
fn migratory_optimisation_keeps_apps_correct_and_helps_is() {
    // IS is the paper's migratory application (bucket pages passed under
    // locks): the §7 optimisation should remove ownership exchanges.
    let base = run_app(App::Is, ProtocolKind::Wfs, 4, Scale::Tiny);
    let opts = RunOptions {
        migratory_opt: true,
        ..RunOptions::default()
    };
    let tuned = run_app_tuned(App::Is, ProtocolKind::Wfs, 4, Scale::Tiny, &opts);
    assert!(base.ok, "{}", base.detail);
    assert!(tuned.ok, "{}", tuned.detail);
    assert!(
        tuned.outcome.report.proto.migratory_grants > 0,
        "IS should trigger migratory grants"
    );
    assert!(
        tuned.outcome.report.net.ownership_requests()
            <= base.outcome.report.net.ownership_requests(),
        "migration on read miss must not add ownership requests ({} vs {})",
        tuned.outcome.report.net.ownership_requests(),
        base.outcome.report.net.ownership_requests()
    );
    // The other apps stay correct with the optimisation enabled.
    for app in [App::Sor, App::Water, App::Barnes] {
        let run = run_app_tuned(app, ProtocolKind::Wfs, 3, Scale::Tiny, &opts);
        assert!(run.ok, "{app} with migratory opt: {}", run.detail);
    }
}
