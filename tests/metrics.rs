//! Integration: cross-protocol metric invariants — the quantitative
//! claims of the paper's §6 that must hold at any scale.

use adsm::apps::kernels::{false_sharing, migratory, producer_consumer, KernelParams};
use adsm::{run_app, App, MsgKind, ProtocolKind, Scale};

const PARAMS: KernelParams = KernelParams {
    iters: 6,
    nprocs: 4,
    ns_per_elem: 200,
};

#[test]
fn sw_uses_no_twin_or_diff_memory_anywhere() {
    for app in [App::Sor, App::Is, App::Water] {
        let run = run_app(app, ProtocolKind::Sw, 4, Scale::Tiny);
        assert!(run.ok);
        assert_eq!(run.outcome.report.proto.storage_bytes_created(), 0);
        assert_eq!(run.outcome.report.proto.twins_created, 0);
        assert_eq!(run.outcome.report.proto.diffs_created, 0);
    }
}

#[test]
fn adaptive_memory_never_exceeds_mw_on_unshared_apps() {
    // §6.2: "For applications that have no write-write false sharing
    // (SOR and IS), the WFS protocol does not create any twins or
    // diffs"; WFS+WG uses more than WFS but less than MW.
    for app in [App::Sor, App::Is] {
        let mw = run_app(app, ProtocolKind::Mw, 4, Scale::Tiny);
        let wfs = run_app(app, ProtocolKind::Wfs, 4, Scale::Tiny);
        let wg = run_app(app, ProtocolKind::WfsWg, 4, Scale::Tiny);
        let m = mw.outcome.report.proto.storage_bytes_created();
        let f = wfs.outcome.report.proto.storage_bytes_created();
        let g = wg.outcome.report.proto.storage_bytes_created();
        assert_eq!(
            f, 0,
            "{app}: WFS must not twin or diff without false sharing"
        );
        assert!(g <= m, "{app}: WFS+WG ({g}) must not exceed MW ({m})");
    }
}

#[test]
fn wfs_memory_below_mw_even_with_false_sharing() {
    // §6.2: adaptive memory is lower than MW even for ILINK/Barnes
    // (high false sharing), just less dramatically.
    for app in [App::Shallow, App::Ilink] {
        let mw = run_app(app, ProtocolKind::Mw, 4, Scale::Tiny);
        let wfs = run_app(app, ProtocolKind::Wfs, 4, Scale::Tiny);
        assert!(
            wfs.outcome.report.proto.storage_bytes_created()
                <= mw.outcome.report.proto.storage_bytes_created(),
            "{app}: WFS memory must not exceed MW"
        );
    }
}

#[test]
fn sw_ping_pong_dominates_traffic_under_false_sharing() {
    // §6.3: "The SW protocol sends the largest number of messages and
    // the largest amount of data" — dramatic under false sharing.
    let sw = false_sharing(ProtocolKind::Sw, PARAMS).report;
    let mw = false_sharing(ProtocolKind::Mw, PARAMS).report;
    let wfs = false_sharing(ProtocolKind::Wfs, PARAMS).report;
    assert!(sw.net.total_bytes() > 3 * mw.net.total_bytes());
    assert!(sw.net.total_bytes() > 3 * wfs.net.total_bytes());
    assert!(sw.net.total_messages() > wfs.net.total_messages());
}

#[test]
fn wfs_tracks_the_winner_on_each_kernel() {
    // Producer-consumer and migratory: WFS should not diff at all (the
    // SW advantage); false sharing: WFS must refuse and adapt (the MW
    // advantage).
    let pc = producer_consumer(ProtocolKind::Wfs, PARAMS).report;
    assert_eq!(pc.proto.diffs_created, 0);
    let mig = migratory(ProtocolKind::Wfs, PARAMS).report;
    assert_eq!(mig.proto.diffs_created, 0);
    assert!(mig.proto.ownership_grants > 0);
    let fs = false_sharing(ProtocolKind::Wfs, PARAMS).report;
    assert!(fs.proto.ownership_refusals > 0);
    assert!(fs.proto.diffs_created > 0);
}

#[test]
fn full_app_runs_are_deterministic() {
    for protocol in [ProtocolKind::Wfs, ProtocolKind::WfsWg] {
        let a = run_app(App::Shallow, protocol, 4, Scale::Tiny);
        let b = run_app(App::Shallow, protocol, 4, Scale::Tiny);
        assert_eq!(a.outcome.report.time, b.outcome.report.time);
        assert_eq!(
            a.outcome.report.net.total_messages(),
            b.outcome.report.net.total_messages()
        );
        assert_eq!(a.outcome.report.proto, b.outcome.report.proto);
    }
}

#[test]
fn mw_never_requests_ownership_and_sw_never_refuses() {
    let mw = false_sharing(ProtocolKind::Mw, PARAMS).report;
    assert_eq!(mw.net.ownership_requests(), 0);
    assert_eq!(mw.proto.ownership_refusals, 0);
    let sw = false_sharing(ProtocolKind::Sw, PARAMS).report;
    assert_eq!(sw.proto.ownership_refusals, 0, "plain SW always grants");
}

#[test]
fn request_reply_message_conservation() {
    // Every page request is answered by exactly one page reply, and every
    // diff request by one diff reply, under every protocol: protocol
    // messages can never be silently dropped or double-counted.
    let protocols = [
        ProtocolKind::Mw,
        ProtocolKind::Sw,
        ProtocolKind::Wfs,
        ProtocolKind::WfsWg,
        ProtocolKind::Sc,
        ProtocolKind::Hlrc,
    ];
    for protocol in protocols {
        for app in [App::Is, App::Shallow] {
            let run = run_app(app, protocol, 4, Scale::Tiny);
            assert!(run.ok, "{app}/{protocol}: {}", run.detail);
            let net = &run.outcome.report.net;
            if protocol == ProtocolKind::Sc {
                // SC routes page requests through a manager: when the
                // faulting processor manages the page itself the request
                // is a free local call but the owner's reply still
                // travels, so replies may outnumber requests.
                assert!(
                    net.messages(MsgKind::PageReply) >= net.messages(MsgKind::PageRequest),
                    "{app}/{protocol}: replies below requests"
                );
            } else {
                assert_eq!(
                    net.messages(MsgKind::PageRequest),
                    net.messages(MsgKind::PageReply),
                    "{app}/{protocol}: page request/reply imbalance"
                );
            }
            assert_eq!(
                net.messages(MsgKind::DiffRequest),
                net.messages(MsgKind::DiffReply),
                "{app}/{protocol}: diff request/reply imbalance"
            );
            assert_eq!(
                net.messages(MsgKind::Invalidation),
                net.messages(MsgKind::InvalidationAck),
                "{app}/{protocol}: invalidation/ack imbalance"
            );
        }
    }
}

#[test]
fn storage_accounting_balances_at_run_end() {
    // Twins never outlive their interval (the close encodes the diff and
    // drops the twin), so twin-alive counters must read zero at the end
    // of every run; protocols that never store diffs must end with zero
    // diff bytes alive as well.
    let protocols = [
        ProtocolKind::Mw,
        ProtocolKind::Sw,
        ProtocolKind::Wfs,
        ProtocolKind::WfsWg,
        ProtocolKind::Sc,
        ProtocolKind::Hlrc,
    ];
    for protocol in protocols {
        let run = run_app(App::Water, protocol, 4, Scale::Tiny);
        assert!(run.ok, "{protocol}: {}", run.detail);
        let proto = &run.outcome.report.proto;
        assert_eq!(proto.twins_alive, 0, "{protocol}: leaked twins");
        assert_eq!(proto.twin_bytes_alive, 0, "{protocol}: leaked twin bytes");
        if matches!(
            protocol,
            ProtocolKind::Sw | ProtocolKind::Sc | ProtocolKind::Hlrc
        ) {
            assert_eq!(proto.diffs_alive, 0, "{protocol}: stored diffs");
        }
        // Peak storage can never exceed what was ever created.
        assert!(proto.peak_storage_bytes <= proto.storage_bytes_created());
    }
}

#[test]
fn hlrc_flush_accounting_matches_traffic() {
    // Every off-home flush is one DiffFlush message; flushes where the
    // writer is the home are free and unrecorded.
    let run = run_app(App::Shallow, ProtocolKind::Hlrc, 4, Scale::Tiny);
    assert!(run.ok, "{}", run.detail);
    let r = &run.outcome.report;
    assert!(
        r.proto.home_flushes >= r.net.messages(MsgKind::DiffFlush),
        "flush counter ({}) below flush messages ({})",
        r.proto.home_flushes,
        r.net.messages(MsgKind::DiffFlush)
    );
    assert!(r.proto.home_flushes > 0, "banded writers must flush");
}

#[test]
fn quantum_bounds_sw_ownership_migration_rate() {
    // §2.3: a new owner holds the page for at least 1 ms. With 4
    // processors hammering one page, ownership can change hands at most
    // ~time/quantum times.
    let run = false_sharing(ProtocolKind::Sw, PARAMS);
    let r = &run.report;
    let grants = r.proto.ownership_grants as u128;
    let quantum_windows = r.time.as_ns() as u128 / 1_000_000u128; // 1 ms
    assert!(
        grants <= quantum_windows + 8,
        "grants {grants} exceed quantum windows {quantum_windows}"
    );
}
