//! Cross-backend equivalence: the OS-thread execution backend must
//! agree with the deterministic simulator wherever determinism is a
//! well-defined expectation.
//!
//! The simulator is the golden oracle (ROADMAP tier-1): its 48 app ×
//! protocol counter digests are bit-stable because it totally orders
//! every protocol action in virtual time. A threads run is a *different
//! causally-valid schedule* of the same program — exactly the space the
//! schedule-fuzz suite covers — so the invariants split into tiers:
//!
//! * **image equality** — for apps whose shared-memory result is
//!   schedule-independent (everything except floating-point reductions
//!   whose rounding depends on lock-grant order, and TSP's choice among
//!   equal-cost tours), the final coherent memory image must be
//!   byte-identical to the simulator's, under every protocol.
//! * **verification** — every run, every app, every race-free protocol
//!   config must still verify against its sequential reference
//!   (`run.ok`), exactly like a fuzzed simulator schedule.
//! * **stat totals** — per-thread stat aggregation must not lose
//!   updates: for combos whose protocol traffic is
//!   interleaving-independent, every non-time counter must equal the
//!   simulator's total exactly.

use adsm::{run_app_tuned, App, ExecBackend, ProtocolKind, RunOptions, Scale};

const PROTOCOLS: [ProtocolKind; 6] = [
    ProtocolKind::Mw,
    ProtocolKind::Sw,
    ProtocolKind::Wfs,
    ProtocolKind::WfsWg,
    ProtocolKind::Sc,
    ProtocolKind::Hlrc,
];

const APPS: [App; 8] = [
    App::Sor,
    App::Is,
    App::Fft3d,
    App::Tsp,
    App::Water,
    App::Shallow,
    App::Barnes,
    App::Ilink,
];

/// FFT bands need `nprocs | n` at tiny scale; 2 divides everything.
fn procs_for(app: App) -> usize {
    if app == App::Fft3d {
        2
    } else {
        4
    }
}

/// Is the app's final memory image a pure function of the program (true)
/// or of the schedule (false)? Only TSP is schedule-dependent: it keeps
/// *one* optimal tour, and which of several equal-cost tours survives
/// depends on which worker found it first. (Water's per-owner force
/// accumulation is order-independent in practice — each pair interaction
/// lands in its own slot — verified over 20 repetitions by the probe.)
fn image_deterministic(app: App) -> bool {
    !matches!(app, App::Tsp)
}

fn opts(backend: ExecBackend) -> RunOptions {
    RunOptions {
        backend,
        ..RunOptions::default()
    }
}

/// FNV-1a over the final coherent memory image.
fn image_hash(img: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in img {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// The simulator's golden counter digest (same fields as
/// `golden_stats.rs`).
fn digest(r: &adsm::RunReport) -> [u64; 15] {
    [
        r.time.as_ns(),
        r.net.total_messages(),
        r.net.total_bytes(),
        r.proto.read_faults,
        r.proto.write_faults,
        r.proto.twins_created,
        r.proto.diffs_created,
        r.proto.diffs_applied,
        r.proto.ownership_grants,
        r.proto.ownership_refusals,
        r.proto.switches_to_mw,
        r.proto.switches_to_sw,
        r.proto.pages_transferred,
        r.proto.gc_runs,
        r.final_sw_pages as u64,
    ]
}

/// The 48 golden combos: every app under every protocol, threads
/// backend. Each must verify, and image-deterministic apps must
/// reproduce the simulator's memory image bit-for-bit.
#[test]
fn threads_backend_matches_simulator_images_across_the_golden_matrix() {
    for app in APPS {
        let nprocs = procs_for(app);
        for proto in PROTOCOLS {
            let sim = run_app_tuned(app, proto, nprocs, Scale::Tiny, &opts(ExecBackend::Sim));
            assert!(sim.ok, "{app}/{proto} sim: {}", sim.detail);
            let thr = run_app_tuned(app, proto, nprocs, Scale::Tiny, &opts(ExecBackend::Threads));
            assert!(thr.ok, "{app}/{proto} threads: {}", thr.detail);
            assert_eq!(
                thr.outcome.report.backend,
                ExecBackend::Threads,
                "report must carry the backend that produced it"
            );
            if image_deterministic(app) {
                assert_eq!(
                    image_hash(sim.outcome.image()),
                    image_hash(thr.outcome.image()),
                    "{app}/{proto}: threads backend produced a different \
                     final memory image than the simulator"
                );
            }
        }
    }
}

/// Scaling: the backends agree at 2, 4 and 8 processors, repeatedly
/// (each repetition is a fresh real-time interleaving — the threads
/// analogue of a fuzz seed).
#[test]
fn threads_backend_agrees_across_proc_counts_and_repetitions() {
    for nprocs in [2usize, 4, 8] {
        for app in [App::Sor, App::Is, App::Shallow] {
            let proto = ProtocolKind::Wfs;
            let sim = run_app_tuned(app, proto, nprocs, Scale::Tiny, &opts(ExecBackend::Sim));
            assert!(sim.ok, "{app}@{nprocs} sim: {}", sim.detail);
            let want = image_hash(sim.outcome.image());
            for rep in 0..3 {
                let thr =
                    run_app_tuned(app, proto, nprocs, Scale::Tiny, &opts(ExecBackend::Threads));
                assert!(thr.ok, "{app}@{nprocs} threads rep {rep}: {}", thr.detail);
                assert_eq!(
                    want,
                    image_hash(thr.outcome.image()),
                    "{app}@{nprocs} threads rep {rep}: image diverged"
                );
            }
        }
    }
}

/// Stats tripwire: per-thread stat aggregation must not lose updates.
/// For combos whose protocol traffic is interleaving-independent (no
/// ownership races, no adaptation races — established empirically over
/// 20 repetitions and pinned here), every non-time counter total under
/// threads must equal the simulator's exactly. A racy `+= 1` anywhere
/// in the stats plumbing shows up as a shortfall.
#[test]
fn threads_backend_stat_totals_match_the_simulator() {
    let combos: [(App, ProtocolKind, usize); 5] = [
        (App::Sor, ProtocolKind::Mw, 4),
        (App::Sor, ProtocolKind::Mw, 8),
        (App::Sor, ProtocolKind::Hlrc, 4),
        (App::Fft3d, ProtocolKind::Mw, 2),
        (App::Ilink, ProtocolKind::Mw, 4),
    ];
    for (app, proto, nprocs) in combos {
        let sim = run_app_tuned(app, proto, nprocs, Scale::Tiny, &opts(ExecBackend::Sim));
        assert!(sim.ok, "{app}/{proto}@{nprocs} sim: {}", sim.detail);
        let want = digest(&sim.outcome.report);
        for rep in 0..3 {
            let thr = run_app_tuned(app, proto, nprocs, Scale::Tiny, &opts(ExecBackend::Threads));
            assert!(thr.ok, "{app}/{proto}@{nprocs} rep {rep}: {}", thr.detail);
            let got = digest(&thr.outcome.report);
            // Virtual time is schedule-dependent (service-interrupt
            // arrival order); everything else must agree to the unit.
            assert_eq!(
                got[1..],
                want[1..],
                "{app}/{proto}@{nprocs} rep {rep}: a stat total diverged \
                 from the simulator (lost or double-counted update?)"
            );
        }
    }
}

/// High-processor-count agreement: at 64 processors (large-scale
/// inputs, so every processor owns a band) the threads backend must
/// reproduce the simulator's memory image bit-for-bit AND its exact
/// non-time stat totals, for the barrier-only apps under the
/// single-writer, multiple-writer and home-based protocols. This is
/// the end-to-end witness for the combining-tree barrier and the
/// sharded directory at high P: a tree combine that merged a clock
/// wrong, a fan-down slice that skipped or double-shipped a record, or
/// a mis-sharded diff would each shift a counter or a page byte.
#[test]
fn threads_backend_matches_simulator_at_64_procs() {
    const NPROCS: usize = 64;
    for app in [App::Sor, App::Ilink] {
        for proto in [ProtocolKind::Mw, ProtocolKind::Sw, ProtocolKind::Hlrc] {
            let sim = run_app_tuned(app, proto, NPROCS, Scale::Large, &opts(ExecBackend::Sim));
            assert!(sim.ok, "{app}/{proto}@{NPROCS} sim: {}", sim.detail);
            let want_img = image_hash(sim.outcome.image());
            let want = digest(&sim.outcome.report);
            let thr = run_app_tuned(
                app,
                proto,
                NPROCS,
                Scale::Large,
                &opts(ExecBackend::Threads),
            );
            assert!(thr.ok, "{app}/{proto}@{NPROCS} threads: {}", thr.detail);
            assert_eq!(
                want_img,
                image_hash(thr.outcome.image()),
                "{app}/{proto}@{NPROCS}: threads image diverged from the simulator"
            );
            let got = digest(&thr.outcome.report);
            // Exact stat totals are only a well-defined expectation
            // where the protocol traffic is interleaving-independent.
            // Two exclusions, both pre-existing SW properties (not
            // high-P artifacts): ILINK's falsely-shared genarray pages
            // race their ownership requests, so forwarding traffic is
            // schedule-dependent under SW; and SOR under SW has exact
            // counts but schedule-dependent *bytes* (ownership-grant
            // timing decides how much of the notice frontier each
            // processor has covered at the barrier, and with it the
            // release-payload sizes).
            if proto == ProtocolKind::Sw && app == App::Ilink {
                continue;
            }
            let cmp_from = if proto == ProtocolKind::Sw { 3 } else { 1 };
            assert_eq!(
                got[1], want[1],
                "{app}/{proto}@{NPROCS}: message count diverged from the simulator"
            );
            assert_eq!(
                got[cmp_from..],
                want[cmp_from..],
                "{app}/{proto}@{NPROCS}: a stat total diverged from the simulator"
            );
        }
    }
}

/// Crash-recovery parity: a scheduled processor crash with instant
/// restart must recover on BOTH backends and leave no trace the oracle
/// can distinguish — byte-identical final images and exactly equal
/// recovery counter totals (`proc_crashes`, `epoch_drops`,
/// `recovery_refetches`). The crash is scheduled at 1 ns so it fires at
/// the victim's *first* durable-commit point on either backend: commit
/// points are program structure, not timing, so the wipe happens at the
/// same episode even though the two backends disagree about virtual
/// time. Combos are drawn from the interleaving-independent set pinned
/// by `threads_backend_stat_totals_match_the_simulator`.
#[test]
fn threads_backend_agrees_with_simulator_under_crash() {
    use adsm::netsim::{Fault, FaultKind, Scenario, SimTime};

    for (app, proto, victim) in [
        (App::Sor, ProtocolKind::Mw, 3u32),
        (App::Sor, ProtocolKind::Hlrc, 3),
        (App::Fft3d, ProtocolKind::Mw, 1),
    ] {
        let nprocs = procs_for(app);
        let mut s = Scenario::perfect();
        s.name = "cross-backend-crash".to_string();
        s.faults = vec![Fault {
            at: SimTime::from_ns(1),
            duration: SimTime::ZERO,
            kind: FaultKind::ProcCrash { proc: victim },
        }];
        let run_with = |backend: ExecBackend| {
            run_app_tuned(
                app,
                proto,
                nprocs,
                Scale::Tiny,
                &RunOptions {
                    scenario: Some(s.clone()),
                    backend,
                    ..RunOptions::default()
                },
            )
        };
        let sim = run_with(ExecBackend::Sim);
        assert!(sim.ok, "{app}/{proto} sim crash: {}", sim.detail);
        let thr = run_with(ExecBackend::Threads);
        assert!(thr.ok, "{app}/{proto} threads crash: {}", thr.detail);

        for r in [&sim.outcome.report, &thr.outcome.report] {
            assert_eq!(r.proto.proc_crashes, 1, "{app}/{proto}: crash never fired");
        }
        assert_eq!(
            image_hash(sim.outcome.image()),
            image_hash(thr.outcome.image()),
            "{app}/{proto}: post-recovery images diverged across backends"
        );
        assert_eq!(
            sim.outcome.report.proto.epoch_drops, thr.outcome.report.proto.epoch_drops,
            "{app}/{proto}: epoch_drops diverged across backends"
        );
        assert_eq!(
            sim.outcome.report.proto.recovery_refetches,
            thr.outcome.report.proto.recovery_refetches,
            "{app}/{proto}: recovery_refetches diverged across backends"
        );
    }
}

/// Lock-heavy stress under real parallelism: many short exclusive
/// critical sections hammering the shim mutex/condvar park paths. A
/// lost wakeup deadlocks (caught by the backend's positional deadlock
/// detector → run error); a dropped stat update breaks the count.
#[test]
fn threads_backend_survives_lock_heavy_contention() {
    for rep in 0..5 {
        let thr = run_app_tuned(
            App::Tsp,
            ProtocolKind::Wfs,
            8,
            Scale::Tiny,
            &opts(ExecBackend::Threads),
        );
        assert!(thr.ok, "TSP@8 threads rep {rep}: {}", thr.detail);
    }
}

/// The empirical probe behind `image_deterministic`: prints, per combo,
/// whether the threads backend reproduced the simulator's counter
/// digest and image. Run with
/// `cargo test --release --test cross_backend -- --ignored --nocapture`.
#[test]
#[ignore = "diagnostic probe, not an invariant"]
fn probe_cross_backend_determinism() {
    for app in APPS {
        let nprocs = procs_for(app);
        for proto in PROTOCOLS {
            let sim = run_app_tuned(app, proto, nprocs, Scale::Tiny, &opts(ExecBackend::Sim));
            let mut img_eq = true;
            let mut dig_eq = true;
            let mut ok = sim.ok;
            for _ in 0..3 {
                let thr =
                    run_app_tuned(app, proto, nprocs, Scale::Tiny, &opts(ExecBackend::Threads));
                ok &= thr.ok;
                img_eq &= image_hash(sim.outcome.image()) == image_hash(thr.outcome.image());
                dig_eq &= digest(&sim.outcome.report) == digest(&thr.outcome.report);
            }
            println!("{app:8} {proto:6} ok={ok} image_eq={img_eq} digest_eq={dig_eq}");
        }
    }
}
