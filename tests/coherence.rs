//! Coherence property test: randomly generated data-race-free programs
//! must produce exactly the sequential result under every protocol.
//!
//! The generator builds an epoch-structured program: in each epoch every
//! processor writes a randomly assigned, disjoint slice of the shared
//! space (assignments reshuffle every epoch, creating migratory sharing
//! and write-write false sharing at slice boundaries); epochs are
//! separated by barriers; some epochs also increment a shared counter
//! under a lock. Reads of foreign data happen in the epoch after the
//! write, keeping the program data-race-free at word granularity. The
//! expected final memory is computed alongside; all six protocols (the
//! paper's four plus the SC and HLRC comparators) must reproduce it bit
//! for bit — and must keep reproducing it under **schedule fuzzing**,
//! where the engine picks the next processor pseudo-randomly at every
//! turn point instead of by least virtual clock.

use adsm::{Dsm, ProtocolKind, SimTime};
use proptest::prelude::*;
use std::sync::Arc;

/// One epoch of the generated program.
#[derive(Clone, Debug)]
struct Epoch {
    /// Per-processor assigned slice starts (each proc writes
    /// `[start, start + len)` of the value array).
    starts: Vec<usize>,
    /// Slice length for this epoch.
    len: usize,
    /// Value written: `base + index`.
    base: u64,
    /// Whether this epoch also increments the locked counter.
    counter: bool,
}

const WORDS: usize = 2048; // 4 pages of u64
const NPROCS: usize = 4;

fn epoch_strategy() -> impl Strategy<Value = Epoch> {
    (
        prop::collection::vec(0usize..WORDS, NPROCS),
        1usize..(WORDS / NPROCS),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(mut starts, len, base, counter)| {
            // Make the slices disjoint: spread the starts over disjoint
            // quarters, offset within the quarter by the random start.
            let quarter = WORDS / NPROCS;
            let len = len.min(quarter);
            for (k, s) in starts.iter_mut().enumerate() {
                *s = k * quarter + (*s % (quarter - len + 1).max(1));
            }
            Epoch {
                starts,
                len,
                base,
                counter,
            }
        })
}

/// All protocols under test: the paper's four plus the comparators.
const ALL_PROTOCOLS: [ProtocolKind; 6] = [
    ProtocolKind::Mw,
    ProtocolKind::WfsWg,
    ProtocolKind::Wfs,
    ProtocolKind::Sw,
    ProtocolKind::Sc,
    ProtocolKind::Hlrc,
];

/// Runs the generated program and returns (final array, counter).
fn run_program(protocol: ProtocolKind, epochs: Arc<Vec<Epoch>>) -> (Vec<u64>, u64) {
    run_program_fuzzed(protocol, epochs, None)
}

/// As [`run_program`], optionally under a fuzzed schedule.
fn run_program_fuzzed(
    protocol: ProtocolKind,
    epochs: Arc<Vec<Epoch>>,
    fuzz: Option<u64>,
) -> (Vec<u64>, u64) {
    let mut builder = Dsm::builder(protocol).nprocs(NPROCS);
    if let Some(seed) = fuzz {
        builder = builder.schedule_fuzz(seed);
    }
    let mut dsm = builder.build();
    let data = dsm.alloc_page_aligned::<u64>(WORDS);
    let counter = dsm.alloc_page_aligned::<u64>(1);
    let eps = epochs.clone();
    let outcome = dsm
        .run(move |p| {
            for (en, e) in eps.iter().enumerate() {
                let start = e.starts[p.index()];
                let vals: Vec<u64> = (0..e.len)
                    .map(|i| e.base.wrapping_add((start + i) as u64))
                    .collect();
                data.write_from(p, start, &vals);
                if e.counter {
                    p.lock(7);
                    counter.update(p, 0, |c| c + 1);
                    p.unlock(7);
                }
                p.compute(SimTime::from_us(100));
                p.barrier();
                // Read-back epoch: every proc samples the previous
                // epoch's foreign writes.
                let other = e.starts[(p.index() + 1) % NPROCS];
                let got = data.get(p, other);
                assert_eq!(
                    got,
                    e.base.wrapping_add(other as u64),
                    "stale read in epoch {en}"
                );
                p.barrier();
            }
        })
        .unwrap_or_else(|err| panic!("{protocol}: {err}"));
    (outcome.read_vec(&data), outcome.read_elem(&counter, 0))
}

/// Sequential expectation.
fn expected(epochs: &[Epoch]) -> (Vec<u64>, u64) {
    let mut mem = vec![0u64; WORDS];
    let mut counter = 0u64;
    for e in epochs {
        for k in 0..NPROCS {
            for i in 0..e.len {
                mem[e.starts[k] + i] = e.base.wrapping_add((e.starts[k] + i) as u64);
            }
        }
        if e.counter {
            counter += NPROCS as u64;
        }
    }
    (mem, counter)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Every protocol reproduces the sequential memory image exactly.
    #[test]
    fn random_drf_programs_are_coherent(
        epochs in prop::collection::vec(epoch_strategy(), 2..6)
    ) {
        let (want_mem, want_counter) = expected(&epochs);
        let epochs = Arc::new(epochs);
        for protocol in ALL_PROTOCOLS {
            let (mem, counter) = run_program(protocol, epochs.clone());
            prop_assert_eq!(&mem, &want_mem, "{} memory image differs", protocol);
            prop_assert_eq!(counter, want_counter, "{} counter differs", protocol);
        }
    }

    /// Lazy (TreadMarks-style) diff creation under MW computes the same
    /// memory image as eager per-interval diffing.
    #[test]
    fn random_drf_programs_are_coherent_under_lazy_diffing(
        epochs in prop::collection::vec(epoch_strategy(), 2..5)
    ) {
        let (want_mem, want_counter) = expected(&epochs);
        let epochs = Arc::new(epochs);
        let mut dsm = Dsm::builder(ProtocolKind::Mw)
            .nprocs(NPROCS)
            .diff_strategy(adsm::DiffStrategy::Lazy)
            .build();
        let data = dsm.alloc_page_aligned::<u64>(WORDS);
        let counter = dsm.alloc_page_aligned::<u64>(1);
        let eps = epochs.clone();
        let outcome = dsm
            .run(move |p| {
                for e in eps.iter() {
                    let start = e.starts[p.index()];
                    let vals: Vec<u64> = (0..e.len)
                        .map(|i| e.base.wrapping_add((start + i) as u64))
                        .collect();
                    data.write_from(p, start, &vals);
                    if e.counter {
                        p.lock(7);
                        counter.update(p, 0, |c| c + 1);
                        p.unlock(7);
                    }
                    p.compute(SimTime::from_us(100));
                    p.barrier();
                    let other = e.starts[(p.index() + 1) % NPROCS];
                    assert_eq!(data.get(p, other), e.base.wrapping_add(other as u64));
                    p.barrier();
                }
            })
            .unwrap();
        prop_assert_eq!(outcome.read_vec(&data), want_mem, "lazy MW memory differs");
        prop_assert_eq!(outcome.read_elem(&counter, 0), want_counter);
    }

    /// Schedule independence: under arbitrary (seeded) turn orders, the
    /// result of a data-race-free program must not change for any
    /// protocol.
    #[test]
    fn random_drf_programs_are_schedule_independent(
        epochs in prop::collection::vec(epoch_strategy(), 2..4),
        seed in any::<u64>(),
    ) {
        let (want_mem, want_counter) = expected(&epochs);
        let epochs = Arc::new(epochs);
        for protocol in ALL_PROTOCOLS {
            let (mem, counter) =
                run_program_fuzzed(protocol, epochs.clone(), Some(seed));
            prop_assert_eq!(
                &mem, &want_mem,
                "{} memory image differs under fuzz seed {}", protocol, seed
            );
            prop_assert_eq!(
                counter, want_counter,
                "{} counter differs under fuzz seed {}", protocol, seed
            );
        }
    }
}

#[test]
fn fixed_regression_program() {
    // A deterministic instance exercising all the transitions: false
    // sharing at quarter boundaries, migratory counter page, reshuffled
    // assignments.
    let epochs = Arc::new(vec![
        Epoch {
            starts: vec![0, 512, 1024, 1536],
            len: 512,
            base: 1,
            counter: true,
        },
        Epoch {
            starts: vec![100, 700, 1100, 1900],
            len: 100,
            base: 99,
            counter: false,
        },
        Epoch {
            starts: vec![511, 1023, 1535, 600],
            len: 1,
            base: 7,
            counter: true,
        },
    ]);
    let (want_mem, want_counter) = expected(&epochs);
    for protocol in ALL_PROTOCOLS {
        let (mem, counter) = run_program(protocol, epochs.clone());
        assert_eq!(mem, want_mem, "{protocol} memory image differs");
        assert_eq!(counter, want_counter, "{protocol} counter differs");
    }
}

#[test]
fn fixed_program_is_schedule_independent_across_seeds() {
    // The regression instance under a spread of fuzz seeds, all
    // protocols. (The proptest above samples random seeds; this pins a
    // deterministic set for reproducible CI.)
    let epochs = Arc::new(vec![
        Epoch {
            starts: vec![0, 512, 1024, 1536],
            len: 512,
            base: 1,
            counter: true,
        },
        Epoch {
            starts: vec![511, 1023, 1535, 600],
            len: 1,
            base: 7,
            counter: true,
        },
    ]);
    let (want_mem, want_counter) = expected(&epochs);
    for protocol in ALL_PROTOCOLS {
        for seed in [1u64, 0xDEAD_BEEF, u64::MAX] {
            let (mem, counter) = run_program_fuzzed(protocol, epochs.clone(), Some(seed));
            assert_eq!(mem, want_mem, "{protocol} seed {seed}: memory differs");
            assert_eq!(
                counter, want_counter,
                "{protocol} seed {seed}: counter differs"
            );
        }
    }
}
