//! Integration: every application verifies against its sequential
//! reference under every protocol, on an odd processor count (uneven
//! bands — different code paths from the in-crate 4-processor tests).

use adsm::{run_app, App, ProtocolKind, Scale};

fn check(app: App, nprocs: usize) {
    for protocol in ProtocolKind::EVALUATED {
        let run = run_app(app, protocol, nprocs, Scale::Tiny);
        assert!(run.ok, "{app} under {protocol} x{nprocs}: {}", run.detail);
        assert!(run.outcome.report.net.total_messages() > 0);
    }
}

#[test]
fn sor_on_three_procs() {
    check(App::Sor, 3);
}

#[test]
fn is_on_three_procs() {
    check(App::Is, 3);
}

#[test]
fn fft_on_two_procs() {
    // FFT bands need nprocs to divide n=8 at tiny scale.
    check(App::Fft3d, 2);
}

#[test]
fn tsp_on_three_procs() {
    check(App::Tsp, 3);
}

#[test]
fn water_on_three_procs() {
    check(App::Water, 3);
}

#[test]
fn shallow_on_three_procs() {
    check(App::Shallow, 3);
}

#[test]
fn barnes_on_three_procs() {
    check(App::Barnes, 3);
}

#[test]
fn ilink_on_three_procs() {
    check(App::Ilink, 3);
}

#[test]
fn every_app_single_proc_degenerates_cleanly() {
    // One processor: protocols should all behave like local execution
    // (no cross-processor traffic beyond nothing; correctness holds).
    for app in App::ALL {
        for protocol in [ProtocolKind::Mw, ProtocolKind::Wfs] {
            let run = run_app(app, protocol, 1, Scale::Tiny);
            assert!(run.ok, "{app} under {protocol} x1: {}", run.detail);
            assert_eq!(
                run.outcome.report.net.total_messages(),
                0,
                "{app}: single-processor runs must not send messages"
            );
        }
    }
}
