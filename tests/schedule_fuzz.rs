//! Schedule-fuzzing robustness: real applications must verify against
//! their sequential references under arbitrary (seeded) engine
//! schedules, for every protocol. A fuzzed schedule is still a causally
//! valid execution — blocking and wake-ups are honoured — so the only
//! thing that may change is *which* interleaving of protocol actions
//! runs; the result may not.

use adsm::{run_app_tuned, App, ProtocolKind, RunOptions, Scale};

const PROTOCOLS: [ProtocolKind; 6] = [
    ProtocolKind::Mw,
    ProtocolKind::Sw,
    ProtocolKind::Wfs,
    ProtocolKind::WfsWg,
    ProtocolKind::Sc,
    ProtocolKind::Hlrc,
];

fn fuzz(app: App, nprocs: usize, seeds: &[u64]) {
    for protocol in PROTOCOLS {
        for &seed in seeds {
            let opts = RunOptions {
                schedule_fuzz: Some(seed),
                ..RunOptions::default()
            };
            let run = run_app_tuned(app, protocol, nprocs, Scale::Tiny, &opts);
            assert!(
                run.ok,
                "{app} under {protocol}, fuzz seed {seed}: {}",
                run.detail
            );
        }
    }
}

#[test]
fn sor_is_schedule_independent() {
    fuzz(App::Sor, 4, &[3, 0x5EED]);
}

#[test]
fn is_is_schedule_independent() {
    fuzz(App::Is, 4, &[3, 0x5EED]);
}

#[test]
fn fft_is_schedule_independent() {
    fuzz(App::Fft3d, 2, &[3, 0x5EED]);
}

#[test]
fn tsp_terminates_and_is_optimal_under_fuzz() {
    // TSP's branch-and-bound prunes against a racy-but-monotonic shared
    // bound; any schedule must still find the Held-Karp optimum.
    fuzz(App::Tsp, 4, &[3, 0x5EED]);
}

#[test]
fn water_is_schedule_independent() {
    fuzz(App::Water, 4, &[3]);
}

#[test]
fn shallow_is_schedule_independent() {
    fuzz(App::Shallow, 4, &[3]);
}

#[test]
fn barnes_is_schedule_independent() {
    fuzz(App::Barnes, 4, &[3]);
}

#[test]
fn ilink_is_schedule_independent() {
    fuzz(App::Ilink, 4, &[3]);
}

/// Crash recovery under fuzzed schedules: a scheduled crash must
/// recover — and still verify against the sequential reference — no
/// matter which causally-valid interleaving the engine picks around
/// the crash point. The crash instant stays fixed while the fuzz seed
/// reshuffles which protocol actions surround it, so successive seeds
/// move the wipe relative to in-flight fetches, lock handoffs and
/// barrier episodes.
#[test]
fn crash_recovery_is_schedule_independent() {
    use adsm::netsim::{Fault, FaultKind, Scenario, SimTime};

    // SOR is barrier-structured, TSP is locks-only: between them the
    // crash lands on both kinds of durable-commit point.
    for (app, nprocs, victim) in [(App::Sor, 4usize, 3u32), (App::Tsp, 4, 2)] {
        for protocol in [ProtocolKind::Wfs, ProtocolKind::Mw, ProtocolKind::Hlrc] {
            // Yardstick: the un-fuzzed fault-free run time positions
            // the crash mid-run.
            let plain = run_app_tuned(app, protocol, nprocs, Scale::Tiny, &RunOptions::default());
            assert!(plain.ok, "{app}/{protocol} plain: {}", plain.detail);
            let mid = plain.outcome.report.time.as_ns() / 2;

            for &seed in &[3u64, 0x5EED, 0xC4A5] {
                let mut s = Scenario::perfect();
                s.name = "fuzzed-crash".to_string();
                s.faults = vec![Fault {
                    at: SimTime::from_ns(mid),
                    duration: SimTime::ZERO,
                    kind: FaultKind::ProcCrash { proc: victim },
                }];
                let run = run_app_tuned(
                    app,
                    protocol,
                    nprocs,
                    Scale::Tiny,
                    &RunOptions {
                        schedule_fuzz: Some(seed),
                        scenario: Some(s),
                        ..RunOptions::default()
                    },
                );
                assert!(
                    run.ok,
                    "{app}/{protocol} crash under fuzz seed {seed}: {}",
                    run.detail
                );
                assert_eq!(
                    run.outcome.report.proto.proc_crashes, 1,
                    "{app}/{protocol} seed {seed}: crash never fired"
                );
            }
        }
    }
}

#[test]
fn fuzzed_runs_reproduce_per_seed() {
    // Same seed, same protocol: byte-identical traffic and timing.
    let opts = RunOptions {
        schedule_fuzz: Some(99),
        ..RunOptions::default()
    };
    for protocol in [ProtocolKind::Wfs, ProtocolKind::Hlrc] {
        let a = run_app_tuned(App::Is, protocol, 4, Scale::Tiny, &opts);
        let b = run_app_tuned(App::Is, protocol, 4, Scale::Tiny, &opts);
        assert!(a.ok && b.ok);
        assert_eq!(
            a.outcome.report.net.total_messages(),
            b.outcome.report.net.total_messages(),
            "{protocol}: fuzzed run not reproducible"
        );
        assert_eq!(a.outcome.report.time, b.outcome.report.time);
    }
}
