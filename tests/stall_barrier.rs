//! Regression: a `ProcStall` window that spans a barrier must not
//! deadlock the barrier — the tree has to tolerate a stalled-but-alive
//! leaf (and a stalled root/manager), holding its messages until the
//! window closes and charging the wait as delivery delay.
//!
//! The chaos engine's original fault corpus never exercised this shape;
//! these cells pin it across the barrier roles a stall can hit (leaf,
//! manager/root), sync styles (barriers, locks+barriers, locks-only),
//! the 64-processor combining tree, and both execution backends.

use adsm::netsim::{Fault, FaultKind, Scenario, SimTime};
use adsm::{run_app_tuned, App, ExecBackend, ProtocolKind, RunOptions, Scale};

/// Runs `app` with one stall window pinned over the middle half of its
/// fault-free run — wide enough to span at least one barrier episode in
/// every barrier-structured app at tiny scale — and asserts the run
/// still verifies, took at least as long as the window's end (the wait
/// was charged, not skipped), and is no faster than the plain run.
fn stall_cell(app: App, proto: ProtocolKind, nprocs: usize, scale: Scale, victim: u32) {
    let base = RunOptions::default();
    let plain = run_app_tuned(app, proto, nprocs, scale, &base);
    assert!(plain.ok, "{app}/{proto} plain: {}", plain.detail);
    let t = plain.outcome.report.time.as_ns();

    let mut s = Scenario::perfect();
    s.name = "stall-spans-barrier".to_string();
    s.faults = vec![Fault {
        at: SimTime::from_ns(t / 4),
        duration: SimTime::from_ns(t / 2),
        kind: FaultKind::ProcStall { proc: victim },
    }];
    let run = run_app_tuned(
        app,
        proto,
        nprocs,
        scale,
        &RunOptions {
            scenario: Some(s),
            ..base
        },
    );
    assert!(run.ok, "{app}/{proto} stalled: {}", run.detail);
    let faulted = run.outcome.report.time.as_ns();
    assert!(
        faulted >= t / 4 + t / 2,
        "{app}/{proto}: finished at {faulted} ns, inside the stall window"
    );
    assert!(
        faulted >= t,
        "{app}/{proto}: the stalled run beat the fault-free run"
    );
}

/// A stalled leaf and a stalled manager both cross the barrier without
/// deadlocking, across the sync styles of the app set.
#[test]
fn stall_spanning_barrier_completes() {
    for victim in [0u32, 1] {
        stall_cell(App::Sor, ProtocolKind::Wfs, 4, Scale::Tiny, victim);
        stall_cell(App::Is, ProtocolKind::Mw, 4, Scale::Tiny, victim);
    }
    stall_cell(App::Water, ProtocolKind::Hlrc, 4, Scale::Tiny, 2);
    // Locks-only: the stall spans lock handoffs instead of barriers.
    stall_cell(App::Tsp, ProtocolKind::Wfs, 4, Scale::Tiny, 3);
}

/// The combining tree at 64 processors tolerates a stalled leaf, a
/// stalled interior node and a stalled root.
#[test]
fn stall_spanning_barrier_in_combining_tree() {
    for victim in [0u32, 17, 63] {
        stall_cell(App::Sor, ProtocolKind::Wfs, 64, Scale::Large, victim);
    }
}

/// The threads backend crosses a stalled barrier too (timing is not
/// meaningful there, so only verification and completion are pinned).
#[test]
fn stall_spanning_barrier_on_threads_backend() {
    let base = RunOptions::default();
    let plain = run_app_tuned(App::Sor, ProtocolKind::Wfs, 4, Scale::Tiny, &base);
    assert!(plain.ok);
    let t = plain.outcome.report.time.as_ns();
    let mut s = Scenario::perfect();
    s.name = "stall-threads".to_string();
    s.faults = vec![Fault {
        at: SimTime::from_ns(t / 4),
        duration: SimTime::from_ns(t / 2),
        kind: FaultKind::ProcStall { proc: 1 },
    }];
    let run = run_app_tuned(
        App::Sor,
        ProtocolKind::Wfs,
        4,
        Scale::Tiny,
        &RunOptions {
            scenario: Some(s),
            backend: ExecBackend::Threads,
            ..base
        },
    );
    assert!(run.ok, "threads stalled: {}", run.detail);
}
