//! Golden-stats equivalence: the layered protocol-stack refactor
//! (trait dispatch + pluggable adaptation policies + shared interval
//! log) must leave run behaviour **bit-identical**. The simulator is
//! deterministic, so every per-app, per-protocol outcome digest below —
//! captured on the pre-refactor tree — must reproduce exactly.
//!
//! Regenerate (after an *intentional* behaviour change only) with:
//!
//! ```text
//! cargo test --release --test golden_stats -- --ignored --nocapture print_golden
//! ```
//!
//! and paste the printed table over `GOLDEN`.

use adsm::{run_app, run_app_tuned, App, ProtocolKind, RunOptions, RunReport, Scale, Scenario};

/// Protocols covered by the digest: the four evaluated protocols plus
/// the two related-work comparators.
const PROTOCOLS: [ProtocolKind; 6] = [
    ProtocolKind::Mw,
    ProtocolKind::Sw,
    ProtocolKind::Wfs,
    ProtocolKind::WfsWg,
    ProtocolKind::Sc,
    ProtocolKind::Hlrc,
];

/// FFT bands need `nprocs | n` at tiny scale; 2 divides everything.
fn procs_for(app: App) -> usize {
    if app == App::Fft3d {
        2
    } else {
        4
    }
}

/// The digest of one run: every deterministic counter that the
/// dispatch, policy and interval-log layers can influence.
fn digest(r: &RunReport) -> [u64; 15] {
    [
        r.time.as_ns(),
        r.net.total_messages(),
        r.net.total_bytes(),
        r.proto.read_faults,
        r.proto.write_faults,
        r.proto.twins_created,
        r.proto.diffs_created,
        r.proto.diffs_applied,
        r.proto.ownership_grants,
        r.proto.ownership_refusals,
        r.proto.switches_to_mw,
        r.proto.switches_to_sw,
        r.proto.pages_transferred,
        r.proto.gc_runs,
        r.final_sw_pages as u64,
    ]
}

fn run_digest(app: App, proto: ProtocolKind) -> [u64; 15] {
    let run = run_app(app, proto, procs_for(app), Scale::Tiny);
    assert!(run.ok, "{app} under {proto}: {}", run.detail);
    digest(&run.outcome.report)
}

/// Captured on the pre-refactor tree (PR 2 head): `(app, protocol) ->
/// [time_ns, msgs, bytes, read_faults, write_faults, twins, diffs,
/// diffs_applied, grants, refusals, to_mw, to_sw, pages_xfer, gc_runs,
/// final_sw_pages]`.
const GOLDEN: &[(App, ProtocolKind, [u64; 15])] = &[
    (
        App::Sor,
        ProtocolKind::Mw,
        [
            72732056, 210, 124916, 60, 146, 146, 146, 60, 0, 0, 0, 0, 18, 0, 0,
        ],
    ),
    (
        App::Sor,
        ProtocolKind::Sw,
        [
            73677432, 210, 312036, 60, 146, 0, 0, 0, 12, 0, 0, 0, 72, 0, 18,
        ],
    ),
    (
        App::Sor,
        ProtocolKind::Wfs,
        [
            66951832, 198, 262212, 60, 146, 0, 0, 0, 12, 0, 0, 0, 60, 0, 18,
        ],
    ),
    (
        App::Sor,
        ProtocolKind::WfsWg,
        [
            66313000, 198, 124024, 60, 146, 103, 103, 41, 0, 12, 52, 0, 19, 0, 5,
        ],
    ),
    (
        App::Sor,
        ProtocolKind::Sc,
        [
            97174832, 347, 263800, 60, 73, 0, 0, 0, 12, 0, 0, 0, 60, 0, 18,
        ],
    ),
    (
        App::Sor,
        ProtocolKind::Hlrc,
        [
            122808240, 287, 390408, 53, 146, 109, 109, 109, 0, 0, 0, 0, 62, 0, 0,
        ],
    ),
    (
        App::Is,
        ProtocolKind::Mw,
        [
            103300164, 202, 209866, 26, 27, 27, 27, 66, 0, 0, 0, 0, 6, 0, 0,
        ],
    ),
    (
        App::Is,
        ProtocolKind::Sw,
        [
            114049436, 172, 199706, 26, 27, 0, 0, 0, 22, 0, 0, 0, 46, 0, 3,
        ],
    ),
    (
        App::Is,
        ProtocolKind::Wfs,
        [
            77058636, 150, 108362, 26, 27, 0, 0, 0, 22, 0, 0, 0, 24, 0, 3,
        ],
    ),
    (
        App::Is,
        ProtocolKind::WfsWg,
        [
            98289252, 194, 193986, 26, 27, 22, 22, 60, 0, 2, 8, 0, 6, 0, 1,
        ],
    ),
    (
        App::Is,
        ProtocolKind::Sc,
        [
            122051136, 217, 109784, 26, 25, 0, 0, 0, 22, 0, 0, 0, 24, 0, 3,
        ],
    ),
    (
        App::Is,
        ProtocolKind::Hlrc,
        [
            83076412, 119, 137502, 21, 27, 21, 21, 21, 0, 0, 0, 0, 20, 0, 0,
        ],
    ),
    (
        App::Fft3d,
        ProtocolKind::Mw,
        [36305152, 46, 72484, 9, 18, 18, 18, 14, 0, 0, 0, 0, 5, 0, 0],
    ),
    (
        App::Fft3d,
        ProtocolKind::Sw,
        [40567588, 50, 76832, 9, 22, 0, 0, 0, 9, 0, 0, 0, 18, 0, 5],
    ),
    (
        App::Fft3d,
        ProtocolKind::Wfs,
        [24541880, 40, 51522, 9, 18, 1, 1, 0, 4, 1, 2, 0, 12, 0, 4],
    ),
    (
        App::Fft3d,
        ProtocolKind::WfsWg,
        [28541664, 42, 51640, 9, 18, 6, 6, 2, 0, 3, 13, 10, 10, 0, 3],
    ),
    (
        App::Fft3d,
        ProtocolKind::Sc,
        [40559680, 78, 73744, 9, 19, 0, 0, 0, 9, 0, 0, 0, 17, 0, 5],
    ),
    (
        App::Fft3d,
        ProtocolKind::Hlrc,
        [27381904, 39, 51476, 9, 18, 3, 3, 3, 0, 0, 0, 0, 11, 0, 0],
    ),
    (
        App::Tsp,
        ProtocolKind::Mw,
        [
            349170212, 1445, 141406, 171, 157, 157, 157, 470, 0, 0, 0, 0, 9, 0, 0,
        ],
    ),
    (
        App::Tsp,
        ProtocolKind::Sw,
        [
            774397728, 1325, 1407964, 170, 158, 0, 0, 0, 153, 0, 0, 0, 323, 0, 2,
        ],
    ),
    (
        App::Tsp,
        ProtocolKind::Wfs,
        [
            523735088, 1176, 772830, 170, 157, 0, 0, 0, 153, 0, 0, 0, 170, 0, 2,
        ],
    ),
    (
        App::Tsp,
        ProtocolKind::WfsWg,
        [
            342834804, 1421, 139682, 168, 155, 151, 151, 453, 0, 2, 8, 0, 9, 0, 0,
        ],
    ),
    (
        App::Tsp,
        ProtocolKind::Sc,
        [
            825635328, 1659, 786456, 170, 156, 0, 0, 0, 153, 0, 0, 0, 170, 0, 2,
        ],
    ),
    (
        App::Tsp,
        ProtocolKind::Hlrc,
        [
            447577268, 930, 595680, 129, 156, 113, 113, 113, 0, 0, 0, 0, 129, 0, 0,
        ],
    ),
    (
        App::Water,
        ProtocolKind::Mw,
        [
            79003928, 396, 159464, 67, 70, 70, 70, 155, 0, 0, 0, 0, 24, 0, 0,
        ],
    ),
    (
        App::Water,
        ProtocolKind::Sw,
        [
            105062940, 339, 474690, 64, 84, 0, 0, 0, 46, 0, 0, 0, 110, 0, 8,
        ],
    ),
    (
        App::Water,
        ProtocolKind::Wfs,
        [
            84294296, 288, 387032, 64, 75, 7, 7, 8, 37, 3, 12, 4, 89, 0, 6,
        ],
    ),
    (
        App::Water,
        ProtocolKind::WfsWg,
        [
            87470008, 354, 247400, 65, 71, 55, 55, 101, 0, 7, 32, 0, 42, 0, 0,
        ],
    ),
    (
        App::Water,
        ProtocolKind::Sc,
        [
            127338064, 527, 380408, 70, 61, 0, 0, 0, 44, 0, 0, 0, 86, 0, 8,
        ],
    ),
    (
        App::Water,
        ProtocolKind::Hlrc,
        [
            108548100, 271, 339656, 57, 71, 53, 53, 53, 0, 0, 0, 0, 75, 0, 0,
        ],
    ),
    (
        App::Shallow,
        ProtocolKind::Mw,
        [
            256946964, 776, 985730, 258, 297, 297, 297, 276, 0, 0, 0, 0, 82, 0, 0,
        ],
    ),
    (
        App::Shallow,
        ProtocolKind::Sw,
        [
            413963180, 1012, 1925692, 172, 458, 0, 0, 0, 278, 0, 0, 0, 450, 0, 52,
        ],
    ),
    (
        App::Shallow,
        ProtocolKind::Wfs,
        [
            244342344, 752, 983192, 241, 320, 196, 196, 235, 63, 39, 156, 0, 139, 0, 13,
        ],
    ),
    (
        App::Shallow,
        ProtocolKind::WfsWg,
        [
            242411236, 768, 865658, 255, 297, 260, 260, 236, 0, 78, 208, 0, 53, 0, 0,
        ],
    ),
    (
        App::Shallow,
        ProtocolKind::Sc,
        [
            642390000, 2226, 2111184, 228, 466, 0, 0, 0, 394, 0, 0, 0, 486, 0, 52,
        ],
    ),
    (
        App::Shallow,
        ProtocolKind::Hlrc,
        [
            261778068, 555, 1052678, 159, 297, 135, 135, 135, 0, 0, 0, 0, 180, 0, 0,
        ],
    ),
    (
        App::Barnes,
        ProtocolKind::Mw,
        [
            27114166, 198, 78756, 30, 34, 34, 34, 78, 0, 0, 0, 0, 6, 0, 0,
        ],
    ),
    (
        App::Barnes,
        ProtocolKind::Sw,
        [
            519294690, 918, 1296220, 49, 271, 0, 0, 0, 246, 0, 0, 0, 296, 0, 2,
        ],
    ),
    (
        App::Barnes,
        ProtocolKind::Wfs,
        [
            30780920, 186, 104244, 30, 34, 28, 28, 64, 2, 4, 8, 0, 14, 0, 0,
        ],
    ),
    (
        App::Barnes,
        ProtocolKind::WfsWg,
        [
            31252598, 198, 90888, 29, 34, 30, 30, 72, 0, 6, 8, 0, 12, 0, 0,
        ],
    ),
    (
        App::Barnes,
        ProtocolKind::Sc,
        [
            447410814, 1698, 1547024, 119, 306, 0, 0, 0, 286, 0, 0, 0, 355, 0, 2,
        ],
    ),
    (
        App::Barnes,
        ProtocolKind::Hlrc,
        [
            33233134, 103, 118420, 24, 34, 25, 25, 25, 0, 0, 0, 0, 24, 0, 0,
        ],
    ),
    (
        App::Ilink,
        ProtocolKind::Mw,
        [
            113919080, 444, 136796, 110, 108, 108, 108, 175, 0, 0, 0, 0, 26, 0, 0,
        ],
    ),
    (
        App::Ilink,
        ProtocolKind::Sw,
        [
            207358824, 454, 762728, 102, 111, 0, 0, 0, 76, 0, 0, 0, 178, 0, 15,
        ],
    ),
    (
        App::Ilink,
        ProtocolKind::Wfs,
        [
            149803436, 418, 313942, 101, 108, 56, 56, 106, 17, 12, 36, 0, 70, 0, 6,
        ],
    ),
    (
        App::Ilink,
        ProtocolKind::WfsWg,
        [
            117751040, 438, 201128, 110, 108, 85, 85, 146, 0, 23, 60, 0, 42, 0, 0,
        ],
    ),
    (
        App::Ilink,
        ProtocolKind::Sc,
        [
            231091488, 715, 562216, 111, 104, 0, 0, 0, 74, 0, 0, 0, 128, 0, 15,
        ],
    ),
    (
        App::Ilink,
        ProtocolKind::Hlrc,
        [
            158789928, 305, 401320, 89, 108, 77, 77, 77, 0, 0, 0, 0, 93, 0, 0,
        ],
    ),
];

#[test]
fn refactor_reproduces_presplit_outcomes_exactly() {
    assert_eq!(
        GOLDEN.len(),
        App::ALL.len() * PROTOCOLS.len(),
        "golden table incomplete — regenerate with print_golden"
    );
    for &(app, proto, expect) in GOLDEN {
        let got = run_digest(app, proto);
        assert_eq!(
            got, expect,
            "{app} under {proto}: outcome digest diverged from the \
             pre-refactor golden capture"
        );
    }
}

/// Chaos-scenario guard: attaching an explicit all-zero-rates
/// [`Scenario`] must be invisible — the delivery layer's fast path has
/// to reproduce every golden digest byte-for-byte, with an empty
/// journal. This pins the "fault-free scenarios are a no-op" property
/// across all 48 app x protocol combinations.
#[test]
fn perfect_scenario_reproduces_golden_digests() {
    for &(app, proto, expect) in GOLDEN {
        let opts = RunOptions {
            scenario: Some(Scenario::perfect()),
            ..RunOptions::default()
        };
        let run = run_app_tuned(app, proto, procs_for(app), Scale::Tiny, &opts);
        assert!(run.ok, "{app} under {proto}: {}", run.detail);
        assert_eq!(
            digest(&run.outcome.report),
            expect,
            "{app} under {proto}: a perfect scenario changed the outcome digest"
        );
        let journal = run
            .outcome
            .journal()
            .expect("scenario runs record a journal");
        assert!(
            journal.is_empty(),
            "{app} under {proto}: perfect scenario journaled {} deviations",
            journal.len()
        );
    }
}

/// Generator: prints the golden table for pasting into `GOLDEN`.
#[test]
#[ignore = "generator, run manually with --ignored"]
fn print_golden() {
    for app in App::ALL {
        for proto in PROTOCOLS {
            let d = run_digest(app, proto);
            println!("    (App::{app:?}, ProtocolKind::{proto:?}, {d:?}),");
        }
    }
}
